// Command proxy runs the live HTTP caching proxy with a configurable
// removal policy — the deployable counterpart of the paper's simulator.
// Point HTTP clients at it as their proxy (http_proxy=http://host:port/)
// or use it reverse-proxy style with origin-form requests.
//
// Usage:
//
//	proxy -listen :3128 -capacity 64MiB -policy SIZE
//	proxy -listen :3128 -shards 16            # N-way sharded store (0 = auto)
//	proxy -listen :3128 -touch-buffer 4096    # deeper touch rings (0 = synchronous hit path)
//	proxy -listen :3128 -parent http://upstream:3128 -policy LRU-MIN
//	proxy -listen :3128 -icp :3130 -siblings peer:3130=http://peer:3128
//	proxy -listen :3128 -accesslog /var/log/webcache/access.log
//	proxy -listen :3128 -admin :8081
//	proxy -listen :3128 -admin :8081 -shadow "LRU,SIZE,LFU"   # ghost-cache policy comparison on /shadow
//	proxy -listen :3128 -admin :8081 -trace-sample 100        # per-request span timelines on /requests
//
// GET /._webcache/stats on the listen address reports statistics. With
// -admin, a separate introspection listener serves /metrics, /healthz,
// /buildinfo, /events (SSE serving-stats snapshots), /trace (Chrome
// trace-event JSON of recent cache events — and, with -trace-sample,
// sampled request span trees), /requests (the tail-sampled slowest and
// flagged request timelines), /accesslog (recent sampled lines) and
// /debug/pprof/.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/proxy"
)

// eventRingSize is the admin trace window: the most recent cache
// events kept for /trace. 64Ki events ≈ a few MB, hours of typical
// 1995-scale traffic.
const eventRingSize = 1 << 16

// options carries the parsed flag set; a struct so tests can exercise
// the full wiring without a process.
type options struct {
	capacity  int64
	polSpec   string
	shards    int // 0 = auto (2×GOMAXPROCS; single-mutex on 1 core), 1 = single-mutex store, N>1 = N-way sharded
	parent    string
	freshFor  time.Duration
	icpAddr   string
	siblings  string
	logPath   string
	logSample int
	admin     bool // build the admin surface (main Starts it on -admin ADDR)

	// shadow lists candidate removal policies (comma-separated specs)
	// to run as metadata-only ghost caches beside the deployed store;
	// empty runs no fleet. shadowQueue sizes the fleet's lossy event
	// ring (0 = proxy.DefaultShadowQueueSlots).
	shadow      string
	shadowQueue int

	// traceSample enables request-lifecycle tracing: every nth request
	// is recorded as a per-phase span timeline and the tail reservoir
	// keeps the traceSlowest slowest per window plus every errored /
	// missed / evicting request (/requests on the admin address). 0 —
	// the default — builds no tracer; the serving path keeps its one
	// nil check.
	traceSample  int
	traceSlowest int

	// expectedDocs pre-sizes the store's maps and policy structures
	// (Store.Reserve); 0 derives a hint from capacity assuming the
	// trace-typical ~16 KiB mean document, < 0 disables reserving.
	expectedDocs int

	// Buffered-maintenance knobs. The zero values are fully inert —
	// touchBuffer 0 keeps the drain-synchronous hit path and
	// rebalanceEvery 0 starts no maintainer — so programmatic callers
	// (tests) get the deterministic store unless they opt in.
	touchBuffer    int           // >0: lossy touch ring slots per shard; Get goes read-lock only
	drainEvery     time.Duration // background drain period (0 = Maintainer default)
	rebalanceEvery time.Duration // shard quota rebalance period (0 = default when maintained; <0 disables)
	rebalanceStep  int64         // max bytes moved into one shard per pass (0 = auto)
}

// app is a fully wired proxy: traffic mux, optional admin surface, and
// the resources Close releases.
type app struct {
	store   proxy.ObjectStore
	sharded *proxy.ShardedStore // non-nil when store is sharded
	srv     *proxy.Server
	logger  *proxy.AccessLogger // nil unless -accesslog or -admin
	mux     *http.ServeMux      // traffic listener handler

	reg    *obs.Registry      // nil unless admin
	ring   *obs.EventRing     // nil unless admin
	tracer *obs.Tracer        // nil unless -trace-sample > 0
	admin  *obs.Server        // nil unless admin; caller Starts/Closes
	maint  *proxy.Maintainer  // nil unless buffered or rebalancing
	fleet  *proxy.ShadowFleet // nil unless -shadow

	responder *proxy.ICPResponder
	logFile   *os.File
}

// buildApp wires the proxy from options. The admin server is built but
// not started; callers serve a.mux on the traffic address and, when
// a.admin is non-nil, Start it on the admin address.
func buildApp(o options) (*app, error) {
	dayStart := time.Now().Unix() / 86400 * 86400
	pol, err := policy.Parse(o.polSpec, dayStart)
	if err != nil {
		return nil, err
	}
	a := &app{}
	shards := o.shards
	if shards == 0 {
		// Auto: twice the parallelism target, so two goroutines rarely
		// collide on one shard even under a skewed URL population. On a
		// single-core host there is no parallelism for sharding to buy
		// and the routing hash is pure overhead (loadgen measures ~0.8×),
		// so auto falls back to the single-mutex store there.
		shards = 2 * runtime.GOMAXPROCS(0)
		if shards == 2 {
			shards = 1
		}
	}
	if shards > 1 {
		// Each shard needs its own policy instance; the spec was
		// validated by the Parse above, so re-parses cannot fail.
		a.sharded = proxy.NewShardedStore(o.capacity, shards, func() policy.Policy {
			p, _ := policy.Parse(o.polSpec, dayStart)
			return p
		})
		a.store = a.sharded
	} else {
		a.store = proxy.NewStore(o.capacity, pol)
	}
	if docs := o.expectedDocs; docs >= 0 {
		if docs == 0 {
			docs = int(o.capacity / (16 << 10))
		}
		a.store.Reserve(docs)
	}
	if o.touchBuffer > 0 {
		a.store.SetTouchBuffer(o.touchBuffer)
	}
	a.srv = proxy.New(a.store)
	a.srv.FreshFor = o.freshFor

	if o.parent != "" {
		pu, err := url.Parse(o.parent)
		if err != nil {
			return nil, fmt.Errorf("bad parent URL: %w", err)
		}
		a.srv.Transport = &http.Transport{Proxy: http.ProxyURL(pu)}
		log.Printf("chaining to parent proxy %s", pu)
	}

	if o.icpAddr != "" {
		a.responder, err = proxy.NewICPResponder(a.store, o.icpAddr)
		if err != nil {
			return nil, err
		}
		log.Printf("answering ICP queries on %s", a.responder.Addr())
	}
	if o.siblings != "" {
		for _, pair := range strings.Split(o.siblings, ",") {
			icpPart, httpPart, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				a.Close()
				return nil, fmt.Errorf("bad sibling %q (want icpHost:port=httpURL)", pair)
			}
			a.srv.Siblings = append(a.srv.Siblings, proxy.Sibling{ICPAddr: icpPart, Proxy: httpPart})
		}
		a.srv.ICP.Timeout = 100 * time.Millisecond
		log.Printf("querying %d ICP siblings before origin fetches", len(a.srv.Siblings))
	}

	// The access logger runs when a log file is requested, and also —
	// retain-only, no file — when the admin surface needs its
	// /accesslog sample.
	var logW *os.File
	if o.logPath != "" {
		logW, err = os.OpenFile(o.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			a.Close()
			return nil, err
		}
		a.logFile = logW
		log.Printf("writing access log to %s", o.logPath)
	}
	var root http.Handler = a.srv
	if logW != nil || o.admin {
		if logW != nil {
			a.logger = proxy.NewAccessLogger(a.srv, logW)
		} else {
			a.logger = proxy.NewAccessLogger(a.srv, nil)
		}
		a.logger.SetSample(o.logSample)
		root = a.logger
	}

	// The shadow fleet rides beside whichever store was built: one
	// ghost cache per candidate policy at the deployed capacity, fed by
	// a single non-blocking enqueue per successful GET.
	if o.shadow != "" {
		var specs []string
		for _, s := range strings.Split(o.shadow, ",") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
		a.fleet, err = proxy.NewShadowFleet(proxy.ShadowOptions{
			Policies:   specs,
			Capacity:   o.capacity,
			QueueSlots: o.shadowQueue,
			DayStart:   dayStart,
		})
		if err != nil {
			a.Close()
			return nil, err
		}
		a.srv.Shadow = a.fleet
		log.Printf("shadowing %d candidate policies: %s",
			len(a.fleet.Policies()), strings.Join(a.fleet.Policies(), ", "))
	}

	// Request-lifecycle tracing: sampled per-phase span timelines with a
	// tail reservoir (K slowest per window + every errored/missed/
	// evicting request). Off by default; the proxy's untraced cost is
	// one nil check per request.
	if o.traceSample > 0 {
		a.tracer = obs.NewTracer(obs.TracerOptions{
			SampleEvery: o.traceSample,
			SlowestK:    o.traceSlowest,
		})
		a.srv.Tracer = a.tracer
		log.Printf("tracing 1 in %d requests (keeping %d slowest per window)",
			o.traceSample, o.traceSlowest)
	}

	if o.admin {
		a.reg = obs.NewRegistry()
		a.ring = obs.NewEventRing(eventRingSize)
		a.srv.Metrics = proxy.NewMetrics(a.reg)
		if a.sharded != nil {
			a.sharded.SetHooksPerShard(proxy.ShardedStoreHooks(a.reg, a.ring))
		} else {
			a.store.SetHooks(proxy.StoreHooks(a.reg, a.ring))
		}
		a.srv.ICP.Queries = a.reg.Counter("proxy.icp_queries")
		a.srv.ICP.Replies = a.reg.Counter("proxy.icp_replies")
		extra := map[string]http.Handler{
			"/accesslog": a.logger.Handler(),
		}
		if a.fleet != nil {
			a.fleet.RegisterMetrics(a.reg)
			extra["/shadow"] = a.fleet.Handler()
		}
		if a.tracer != nil {
			a.tracer.RegisterMetrics(a.reg, "proxy")
		}
		a.admin = obs.NewServer(obs.ServerOptions{
			Registry:         a.reg,
			Ring:             a.ring,
			Tracer:           a.tracer,
			Snapshot:         a.snapshot,
			SnapshotInterval: time.Second,
			BuildMeta: map[string]any{
				"cmd":    "proxy",
				"policy": pol.Name(),
			},
			Extra: extra,
		})
	}

	// Background maintenance: runs when the buffered hit path needs its
	// drain safety net, or when a sharded store should rebalance quota.
	// With the zero-valued knobs neither condition holds and no goroutine
	// starts — the deterministic arrangement tests rely on.
	if o.touchBuffer > 0 || (a.sharded != nil && o.rebalanceEvery != 0) {
		var mm *proxy.MaintMetrics
		if a.reg != nil {
			shardCount := 1
			if a.sharded != nil {
				shardCount = a.sharded.NumShards()
			}
			mm = proxy.NewMaintMetrics(a.reg, shardCount)
		}
		a.maint = proxy.StartMaintenance(a.store, proxy.MaintOptions{
			DrainEvery:     o.drainEvery,
			RebalanceEvery: o.rebalanceEvery,
			RebalanceStep:  o.rebalanceStep,
			Metrics:        mm,
		})
	}

	a.mux = http.NewServeMux()
	a.mux.HandleFunc("/._webcache/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.snapshot())
	})
	a.mux.Handle("/", root)
	return a, nil
}

// snapshot is the serving-stats document: the /._webcache/stats body
// and the admin /events SSE frame.
func (a *app) snapshot() any {
	doc := map[string]any{
		"proxy": a.srv.Stats(),
		"store": a.store.Stats(),
	}
	if a.reg != nil {
		// Recent-window hit rate for the deployed store (the store.*
		// lifetime counters tell you since-boot; this is the last
		// minute) — the deployed side of the shadow fleet's regret.
		gets := a.reg.Windowed("store.window_gets", 0, 0).WindowTotal()
		hits := a.reg.Windowed("store.window_hits", 0, 0).WindowTotal()
		hr := 0.0
		if gets > 0 {
			hr = float64(hits) / float64(gets)
		}
		doc["store_window"] = map[string]any{"gets": gets, "hits": hits, "hr": hr}
	}
	if a.fleet != nil {
		doc["shadow"] = a.fleet.Report()
	}
	if a.sharded != nil {
		doc["shards"] = a.sharded.ShardStats()
	}
	if a.responder != nil {
		q, h := a.responder.Stats()
		doc["icp"] = map[string]int64{"queries": q, "hits": h}
	}
	return doc
}

// Close releases everything buildApp opened, in dependency order: the
// maintainer stops touching the store first, then the shadow fleet
// stops its drain worker (no more ghost-cache writes), then the admin
// server — whose handlers read both — shuts down, then the network and
// file resources. Every step is idempotent and nil-safe, so Close is
// safe after a partial buildApp failure and after a prior Close.
func (a *app) Close() {
	if a.maint != nil {
		a.maint.Close()
	}
	if a.fleet != nil {
		a.fleet.Close()
	}
	if a.admin != nil {
		a.admin.Close()
	}
	if a.responder != nil {
		a.responder.Close()
	}
	if a.logger != nil {
		a.logger.Flush()
	}
	if a.logFile != nil {
		a.logFile.Close()
	}
}

func main() {
	var (
		listen    = flag.String("listen", ":3128", "address to listen on")
		capFlag   = flag.String("capacity", "64MiB", "cache capacity (bytes, or with KiB/MiB/GiB suffix)")
		polSpec   = flag.String("policy", "SIZE", "removal policy (SIZE, LRU, LFU, LRU-MIN, Hyper-G, key1/key2, ...)")
		shards    = flag.Int("shards", 0, "store shard count (0 = auto: 2×GOMAXPROCS, single-mutex on 1 core; 1 = single-mutex store)")
		parent    = flag.String("parent", "", "optional parent proxy URL (second-level cache)")
		freshFor  = flag.Duration("fresh", 5*time.Minute, "serve cached objects this long before revalidating")
		icpAddr   = flag.String("icp", "", "UDP address to answer ICP sibling queries on (e.g. :3130)")
		siblings  = flag.String("siblings", "", "comma-separated sibling list as icpHost:port=httpURL pairs")
		logPath   = flag.String("accesslog", "", "write a common-log-format access log to this file")
		logSample = flag.Int("log-sample", 1, "log every nth request (1 = all)")
		adminAddr = flag.String("admin", "", "serve the introspection endpoints on this address (e.g. :8081)")

		shadowSpec  = flag.String("shadow", "", "comma-separated candidate policies to run as ghost caches (e.g. \"LRU,SIZE,LFU\"); /shadow on the admin address reports their window HR/WHR and regret")
		shadowQueue = flag.Int("shadow-queue", 0, "shadow fleet event-ring slots (0 = default)")

		traceSample  = flag.Int("trace-sample", 0, "trace every nth request's phase timeline (0 = off); /requests on the admin address shows the kept tail")
		traceSlowest = flag.Int("trace-slowest", 16, "keep this many slowest traced requests per window (plus every errored/missed/evicting one)")

		expectedDocs = flag.Int("expected-docs", 0, "pre-size store maps and policy structures for this many resident documents (0 = capacity/16KiB, -1 = off)")

		touchBuffer    = flag.Int("touch-buffer", 1024, "touch-buffer slots per shard for the read-lock-only hit path (0 = synchronous policy updates)")
		drainEvery     = flag.Duration("drain-every", 50*time.Millisecond, "background touch-buffer drain period")
		rebalanceEvery = flag.Duration("rebalance-every", 2*time.Second, "shard quota rebalance period (sharded store; negative disables)")
		rebalanceStep  = flag.String("rebalance-step", "0", "max bytes moved into one shard per rebalance pass (0 = auto; accepts KiB/MiB suffixes)")
	)
	flag.Parse()

	capacity, err := parseBytes(*capFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxy:", err)
		os.Exit(2)
	}
	step := int64(0)
	if *rebalanceStep != "0" {
		if step, err = parseBytes(*rebalanceStep); err != nil {
			fmt.Fprintln(os.Stderr, "proxy: bad -rebalance-step:", err)
			os.Exit(2)
		}
	}
	a, err := buildApp(options{
		capacity:  capacity,
		polSpec:   *polSpec,
		shards:    *shards,
		parent:    *parent,
		freshFor:  *freshFor,
		icpAddr:   *icpAddr,
		siblings:  *siblings,
		logPath:   *logPath,
		logSample: *logSample,
		admin:     *adminAddr != "",

		shadow:      *shadowSpec,
		shadowQueue: *shadowQueue,

		traceSample:  *traceSample,
		traceSlowest: *traceSlowest,

		expectedDocs: *expectedDocs,

		touchBuffer:    *touchBuffer,
		drainEvery:     *drainEvery,
		rebalanceEvery: *rebalanceEvery,
		rebalanceStep:  step,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxy:", err)
		os.Exit(2)
	}

	if a.admin != nil {
		addr, err := a.admin.Start(*adminAddr)
		if err != nil {
			a.Close()
			fmt.Fprintln(os.Stderr, "proxy:", err)
			os.Exit(2)
		}
		log.Printf("introspection endpoints on http://%s/ (metrics, healthz, events, trace, pprof)", addr)
	}

	shardNote := "single-mutex store"
	if a.sharded != nil {
		shardNote = fmt.Sprintf("%d-way sharded store", a.sharded.NumShards())
	}
	if *touchBuffer > 0 {
		shardNote += fmt.Sprintf(", buffered hit path (%d slots)", *touchBuffer)
	}
	log.Printf("caching proxy on %s: capacity=%s policy=%s (%s)", *listen, *capFlag, *polSpec, shardNote)

	// Serve until SIGTERM/SIGINT, then shut down deterministically:
	// stop accepting traffic, drain in-flight requests, and only then
	// Close the app (maintainer → shadow fleet → admin → ICP → log) so
	// nothing is torn down while requests might still touch it.
	traffic := &http.Server{Addr: *listen, Handler: a.mux}
	errc := make(chan error, 1)
	go func() { errc <- traffic.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := traffic.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		cancel()
		a.Close()
	case err := <-errc:
		a.Close()
		log.Fatal(err)
	}
}

// parseBytes parses "1048576", "64MiB", "1.5GiB", etc.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	for suffix, m := range map[string]int64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30,
		"KB": 1000, "MB": 1000_000, "GB": 1000_000_000,
	} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad capacity %q", s)
	}
	return int64(v * float64(mult)), nil
}
