// Command proxy runs the live HTTP caching proxy with a configurable
// removal policy — the deployable counterpart of the paper's simulator.
// Point HTTP clients at it as their proxy (http_proxy=http://host:port/)
// or use it reverse-proxy style with origin-form requests.
//
// Usage:
//
//	proxy -listen :3128 -capacity 64MiB -policy SIZE
//	proxy -listen :3128 -parent http://upstream:3128 -policy LRU-MIN
//	proxy -listen :3128 -icp :3130 -siblings peer:3130=http://peer:3128
//	proxy -listen :3128 -accesslog /var/log/webcache/access.log
//
// GET /._webcache/stats on the listen address reports statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"webcache/internal/policy"
	"webcache/internal/proxy"
)

func main() {
	var (
		listen   = flag.String("listen", ":3128", "address to listen on")
		capFlag  = flag.String("capacity", "64MiB", "cache capacity (bytes, or with KiB/MiB/GiB suffix)")
		polSpec  = flag.String("policy", "SIZE", "removal policy (SIZE, LRU, LFU, LRU-MIN, Hyper-G, key1/key2, ...)")
		parent   = flag.String("parent", "", "optional parent proxy URL (second-level cache)")
		freshFor = flag.Duration("fresh", 5*time.Minute, "serve cached objects this long before revalidating")
		icpAddr  = flag.String("icp", "", "UDP address to answer ICP sibling queries on (e.g. :3130)")
		siblings = flag.String("siblings", "", "comma-separated sibling list as icpHost:port=httpURL pairs")
		logPath  = flag.String("accesslog", "", "write a common-log-format access log to this file")
	)
	flag.Parse()

	capacity, err := parseBytes(*capFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxy:", err)
		os.Exit(2)
	}
	pol, err := policy.Parse(*polSpec, time.Now().Unix()/86400*86400)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxy:", err)
		os.Exit(2)
	}

	store := proxy.NewStore(capacity, pol)
	srv := proxy.New(store)
	srv.FreshFor = *freshFor
	if *parent != "" {
		pu, err := url.Parse(*parent)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proxy: bad parent URL:", err)
			os.Exit(2)
		}
		srv.Transport = &http.Transport{Proxy: http.ProxyURL(pu)}
		log.Printf("chaining to parent proxy %s", pu)
	}

	if *icpAddr != "" {
		responder, err := proxy.NewICPResponder(store, *icpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proxy:", err)
			os.Exit(2)
		}
		defer responder.Close()
		log.Printf("answering ICP queries on %s", responder.Addr())
	}
	if *siblings != "" {
		for _, pair := range strings.Split(*siblings, ",") {
			icpPart, httpPart, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "proxy: bad sibling %q (want icpHost:port=httpURL)\n", pair)
				os.Exit(2)
			}
			srv.Siblings = append(srv.Siblings, proxy.Sibling{ICPAddr: icpPart, Proxy: httpPart})
		}
		srv.ICP.Timeout = 100 * time.Millisecond
		log.Printf("querying %d ICP siblings before origin fetches", len(srv.Siblings))
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/._webcache/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"proxy": srv.Stats(),
			"store": store.Stats(),
		})
	})
	var root http.Handler = srv
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proxy:", err)
			os.Exit(2)
		}
		defer f.Close()
		logger := proxy.NewAccessLogger(srv, f)
		defer logger.Flush()
		root = logger
		log.Printf("writing access log to %s", *logPath)
	}
	mux.Handle("/", root)

	log.Printf("caching proxy on %s: capacity=%s policy=%s", *listen, *capFlag, pol.Name())
	if err := http.ListenAndServe(*listen, mux); err != nil {
		log.Fatal(err)
	}
}

// parseBytes parses "1048576", "64MiB", "1.5GiB", etc.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	for suffix, m := range map[string]int64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30,
		"KB": 1000, "MB": 1000_000, "GB": 1000_000_000,
	} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad capacity %q", s)
	}
	return int64(v * float64(mult)), nil
}
