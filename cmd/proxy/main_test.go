package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"webcache/internal/obs"
)

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"1048576": 1048576,
		"64MiB":   64 << 20,
		"1.5GiB":  3 << 29,
		"10KiB":   10 << 10,
		"2GB":     2_000_000_000,
		"500KB":   500_000,
		" 3MB ":   3_000_000,
	}
	for in, want := range good {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "abc", "-5", "0", "MiB"} {
		if _, err := parseBytes(in); err == nil {
			t.Errorf("parseBytes(%q) accepted", in)
		}
	}
}

// TestAdminEndToEnd wires the full cmd/proxy app with the admin
// surface on, proxies real traffic through it, and checks every admin
// endpoint — with the metric counters agreeing with the access log.
func TestAdminEndToEnd(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html>%s</html>", r.URL.Path)
	}))
	defer origin.Close()

	a, err := buildApp(options{
		capacity: 1 << 20,
		polSpec:  "SIZE",
		freshFor: time.Hour,
		admin:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	traffic := httptest.NewServer(a.mux)
	defer traffic.Close()
	adminAddr, err := a.admin.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminURL := "http://" + adminAddr.String()

	// Proxy traffic: three distinct documents, one of them re-fetched
	// twice more → 5 requests, 2 hits, 3 origin fetches.
	fetch := func(path string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, traffic.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = strings.TrimPrefix(origin.URL, "http://")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/a.html", "/b.html", "/c.html", "/a.html", "/a.html"} {
		fetch(path)
	}

	body, status := adminGet(t, adminURL+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", status, body)
	}

	// /metrics counters must match both the proxy's own stats and the
	// access log's line count.
	body, status = adminGet(t, adminURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	st := a.srv.Stats()
	if st.Requests != 5 || st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 5 requests / 2 hits / 3 misses", st)
	}
	wantLines := []string{
		fmt.Sprintf("proxy.requests %d", st.Requests),
		fmt.Sprintf("proxy.hits %d", st.Hits),
		fmt.Sprintf("proxy.misses %d", st.Misses),
		"proxy.origin_fetches 3",
		"proxy.latency_ns.count 5",
		"proxy.latency_ns.p50 ",
		"proxy.latency_ns.p99 ",
		"store.inserts 3",
	}
	for _, want := range wantLines {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if got := a.logger.Lines(); got != uint64(st.Requests) {
		t.Errorf("access log has %d lines, proxy served %d requests", got, st.Requests)
	}

	// The access-log sample endpoint serves the same lines.
	body, status = adminGet(t, adminURL+"/accesslog")
	if status != http.StatusOK || strings.Count(body, "\n") != int(st.Requests) {
		t.Errorf("accesslog = %d with %d lines, want %d", status, strings.Count(body, "\n"), st.Requests)
	}

	// /trace is loadable Chrome trace-event JSON covering the cache
	// events the traffic generated (3 misses, 3 adds, 2 hits).
	body, status = adminGet(t, adminURL+"/trace")
	if status != http.StatusOK {
		t.Fatalf("trace status = %d", status)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(body), &records); err != nil {
		t.Fatalf("trace unparsable: %v", err)
	}
	if len(records) != 8 {
		t.Errorf("trace has %d records, want 8", len(records))
	}
	for i, rec := range records {
		for _, key := range []string{"ph", "ts", "pid", "name"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("trace record %d missing %q", i, key)
			}
		}
	}

	// /events streams serving-stats snapshots; the first frame arrives
	// immediately and reflects the traffic above.
	resp, err := http.Get(adminURL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	var frame string
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			frame = strings.TrimSpace(strings.TrimPrefix(line, "data: "))
			break
		}
	}
	var snap struct {
		Proxy struct{ Requests, Hits int64 }
		Store struct{ Docs int64 }
	}
	if err := json.Unmarshal([]byte(frame), &snap); err != nil {
		t.Fatalf("SSE frame unparsable: %v\n%s", err, frame)
	}
	if snap.Proxy.Requests != 5 || snap.Proxy.Hits != 2 || snap.Store.Docs != 3 {
		t.Errorf("SSE snapshot = %+v, want 5 requests / 2 hits / 3 docs", snap)
	}

	// pprof and buildinfo answer on the same mux.
	if _, status := adminGet(t, adminURL+"/debug/pprof/"); status != http.StatusOK {
		t.Errorf("pprof status = %d", status)
	}
	body, status = adminGet(t, adminURL+"/buildinfo")
	if status != http.StatusOK || !strings.Contains(body, `"cmd": "proxy"`) {
		t.Errorf("buildinfo = %d %q", status, body)
	}

	// The traffic listener still serves its legacy stats endpoint.
	body, status = adminGet(t, traffic.URL+"/._webcache/stats")
	if status != http.StatusOK || !strings.Contains(body, `"Requests": 5`) {
		t.Errorf("legacy stats = %d %q", status, body)
	}
}

// TestShardedApp wires the app with an explicit shard count and the
// admin surface on, pushes traffic through it, and checks the sharded
// store is live end to end: the snapshot grows a per-shard stats
// section, the shard totals agree with the aggregate, and the event
// ring carries shard tags.
func TestShardedApp(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html>%s</html>", r.URL.Path)
	}))
	defer origin.Close()

	a, err := buildApp(options{
		capacity: 1 << 20,
		polSpec:  "SIZE",
		shards:   4,
		freshFor: time.Hour,
		admin:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.sharded == nil || a.sharded.NumShards() != 4 {
		t.Fatal("explicit -shards 4 did not build a 4-way sharded store")
	}

	traffic := httptest.NewServer(a.mux)
	defer traffic.Close()

	for i := 0; i < 20; i++ {
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/doc%d.html", traffic.URL, i%10), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = strings.TrimPrefix(origin.URL, "http://")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// The snapshot document gains the per-shard section, and the shard
	// docs sum to the aggregate the store reports.
	raw, err := json.Marshal(a.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Store  struct{ Docs int64 }
		Shards []struct{ Docs int64 }
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("snapshot has %d shard entries, want 4", len(snap.Shards))
	}
	var docs int64
	for _, sh := range snap.Shards {
		docs += sh.Docs
	}
	if snap.Store.Docs != 10 || docs != snap.Store.Docs {
		t.Errorf("aggregate docs %d, shard sum %d, want both 10", snap.Store.Docs, docs)
	}

	// Every ring event carries a valid shard tag, and the 10 distinct
	// documents spread over more than one shard.
	shardsSeen := map[int32]bool{}
	for _, ev := range a.ring.Snapshot() {
		if ev.Shard < 0 || ev.Shard >= 4 {
			t.Fatalf("event carries shard %d outside [0,4)", ev.Shard)
		}
		shardsSeen[ev.Shard] = true
	}
	if len(shardsSeen) < 2 {
		t.Errorf("10 documents landed on %d shard(s); routing looks degenerate", len(shardsSeen))
	}
}

// TestBuildAppWithoutAdmin pins the default path: no registry, no
// ring, no admin server, no access logger — the pre-observability
// wiring byte for byte.
func TestBuildAppWithoutAdmin(t *testing.T) {
	a, err := buildApp(options{capacity: 1 << 20, polSpec: "LRU", freshFor: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.admin != nil || a.reg != nil || a.ring != nil || a.logger != nil {
		t.Fatal("admin machinery built without -admin")
	}
	if a.srv.Metrics != nil {
		t.Fatal("proxy metrics attached without -admin")
	}
}

// TestShadowApp wires the app with a shadow fleet and the admin
// surface, pushes traffic through it, and checks the fleet end to end:
// every successful GET reaches the ghost caches, /shadow answers in
// text and JSON, /metrics carries store.shadow.* and the deployed
// windowed-rate gauges, and the snapshot document grows shadow and
// store_window sections.
func TestShadowApp(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html>%s</html>", r.URL.Path)
	}))
	defer origin.Close()

	a, err := buildApp(options{
		capacity: 1 << 20,
		polSpec:  "SIZE",
		freshFor: time.Hour,
		admin:    true,
		shadow:   "LRU,SIZE,LFU",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.fleet == nil || a.srv.Shadow != a.fleet {
		t.Fatal("-shadow did not attach a fleet to the proxy server")
	}

	traffic := httptest.NewServer(a.mux)
	defer traffic.Close()
	adminAddr, err := a.admin.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminURL := "http://" + adminAddr.String()

	for _, path := range []string{"/a.html", "/b.html", "/c.html", "/a.html", "/a.html"} {
		req, err := http.NewRequest(http.MethodGet, traffic.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = strings.TrimPrefix(origin.URL, "http://")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	a.fleet.Flush()

	// Every request reached every ghost cache.
	rep := a.fleet.Report()
	if rep.Enqueued != 5 || rep.Dropped != 0 {
		t.Fatalf("fleet enqueued %d dropped %d, want 5 / 0", rep.Enqueued, rep.Dropped)
	}
	if len(rep.Shadows) != 3 {
		t.Fatalf("fleet has %d shadows, want 3", len(rep.Shadows))
	}
	for _, sh := range rep.Shadows {
		if sh.Requests != 5 {
			t.Errorf("shadow %s saw %d requests, want 5", sh.Policy, sh.Requests)
		}
	}

	// /shadow answers in text and JSON.
	body, status := adminGet(t, adminURL+"/shadow")
	if status != http.StatusOK || !strings.Contains(body, "POLICY") || !strings.Contains(body, "LRU") {
		t.Fatalf("/shadow = %d:\n%s", status, body)
	}
	body, status = adminGet(t, adminURL+"/shadow?format=json")
	if status != http.StatusOK {
		t.Fatalf("/shadow?format=json = %d", status)
	}
	var jsonRep struct {
		Enqueued int64
		Shadows  []struct{ Policy string }
	}
	if err := json.Unmarshal([]byte(body), &jsonRep); err != nil {
		t.Fatalf("/shadow json unparsable: %v\n%s", err, body)
	}
	if jsonRep.Enqueued != 5 || len(jsonRep.Shadows) != 3 {
		t.Fatalf("/shadow json = %+v", jsonRep)
	}

	// /metrics carries the fleet and the deployed windowed rate.
	body, status = adminGet(t, adminURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	for _, want := range []string{
		"store.shadow.drops 0",
		"store.shadow.enqueued 5",
		"store.shadow.LRU.window_hr_bp ",
		"store.shadow.LFU.regret_bp ",
		"store.window_gets 5",
		"store.window_hits 2",
		"store.window_hr_bp 4000",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// The snapshot document grows the shadow and store_window sections.
	raw, err := json.Marshal(a.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Shadow      struct{ Enqueued int64 }
		StoreWindow struct {
			Gets, Hits int64
			HR         float64
		} `json:"store_window"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Shadow.Enqueued != 5 {
		t.Errorf("snapshot shadow.enqueued = %d, want 5", snap.Shadow.Enqueued)
	}
	if snap.StoreWindow.Gets != 5 || snap.StoreWindow.Hits != 2 || snap.StoreWindow.HR != 0.4 {
		t.Errorf("snapshot store_window = %+v, want 5 gets / 2 hits / 0.4", snap.StoreWindow)
	}
}

// TestTracedApp wires the app with -trace-sample and the admin
// surface, pushes a miss and a hit through it, and checks the tracing
// path end to end: responses carry X-Trace-Id, /requests answers in
// text and JSON with the sampled timelines, /metrics carries the
// proxy.trace_* counters, the access log cross-references the trace
// IDs, and /trace includes the pid-2 request span trees.
func TestTracedApp(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html>%s</html>", r.URL.Path)
	}))
	defer origin.Close()

	a, err := buildApp(options{
		capacity:     1 << 20,
		polSpec:      "SIZE",
		freshFor:     time.Hour,
		admin:        true,
		traceSample:  1,
		traceSlowest: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.tracer == nil || a.srv.Tracer != a.tracer {
		t.Fatal("-trace-sample did not attach a tracer to the proxy server")
	}

	traffic := httptest.NewServer(a.mux)
	defer traffic.Close()
	adminAddr, err := a.admin.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminURL := "http://" + adminAddr.String()

	ids := map[string]bool{}
	for _, path := range []string{"/a.html", "/a.html"} {
		req, err := http.NewRequest(http.MethodGet, traffic.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = strings.TrimPrefix(origin.URL, "http://")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Trace-Id")
		if id == "" {
			t.Fatalf("response for %s has no X-Trace-Id", path)
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Fatalf("2 requests yielded %d distinct trace IDs", len(ids))
	}

	// /requests answers in text and JSON; both sampled requests were
	// kept (the miss is flagged, the hit competes in the half-empty
	// slowest reservoir) and carry their header IDs.
	body, status := adminGet(t, adminURL+"/requests")
	if status != http.StatusOK || !strings.Contains(body, "MISS") || !strings.Contains(body, "HIT") {
		t.Fatalf("/requests = %d:\n%s", status, body)
	}
	body, status = adminGet(t, adminURL+"/requests?format=json")
	if status != http.StatusOK {
		t.Fatalf("/requests?format=json = %d", status)
	}
	var doc struct {
		Stats    struct{ Sampled, Kept int64 }
		Requests []struct {
			ID      uint64
			Verdict string
			Spans   []struct{ Phase string }
		}
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/requests json unparsable: %v\n%s", err, body)
	}
	if doc.Stats.Sampled != 2 || doc.Stats.Kept != 2 || len(doc.Requests) != 2 {
		t.Fatalf("/requests json = %+v, want 2 sampled / 2 kept", doc)
	}
	for _, rec := range doc.Requests {
		if id := obs.FormatTraceID(rec.ID); !ids[id] {
			t.Errorf("kept trace %s not among response header IDs %v", id, ids)
		}
		var phases []string
		for _, sp := range rec.Spans {
			phases = append(phases, sp.Phase)
		}
		switch rec.Verdict {
		case "MISS":
			for _, want := range []string{"parse", "store.get", "origin.ttfb", "admit"} {
				if !slices.Contains(phases, want) {
					t.Errorf("miss timeline missing %s: %v", want, phases)
				}
			}
		case "HIT":
			if !slices.Contains(phases, "store.get") || slices.Contains(phases, "origin.ttfb") {
				t.Errorf("hit timeline %v, want store.get without origin phases", phases)
			}
		default:
			t.Errorf("unexpected verdict %q", rec.Verdict)
		}
	}

	// /metrics carries the tracer counters.
	body, status = adminGet(t, adminURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	for _, want := range []string{"proxy.trace_sampled 2", "proxy.trace_kept 2", "proxy.trace_flagged 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// The access log cross-references both trace IDs.
	body, status = adminGet(t, adminURL+"/accesslog")
	if status != http.StatusOK {
		t.Fatalf("accesslog status = %d", status)
	}
	for id := range ids {
		if !strings.Contains(body, " trace="+id) {
			t.Errorf("access log does not reference trace %s:\n%s", id, body)
		}
	}

	// /trace merges the event ring (pid 1) with request spans (pid 2).
	body, status = adminGet(t, adminURL+"/trace")
	if status != http.StatusOK {
		t.Fatalf("trace status = %d", status)
	}
	var events []struct{ Pid int }
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("trace unparsable: %v", err)
	}
	pids := map[int]int{}
	for _, ev := range events {
		pids[ev.Pid]++
	}
	if pids[1] == 0 || pids[2] == 0 {
		t.Fatalf("combined trace missing a source: pid counts %v", pids)
	}
}

// TestShadowAppBadSpec pins startup validation: an unknown shadow
// policy fails buildApp instead of surfacing at first request.
func TestShadowAppBadSpec(t *testing.T) {
	if _, err := buildApp(options{capacity: 1 << 20, polSpec: "SIZE", shadow: "LRU,NOSUCH"}); err == nil {
		t.Fatal("buildApp accepted an unknown shadow policy")
	}
}

// TestCleanShutdownNoGoroutineLeak pins the Close ordering satellite:
// a fully loaded app — buffered maintainer, shadow fleet, admin server
// with an SSE subscriber — releases every goroutine it started. Run
// twice to confirm Close is idempotent.
func TestCleanShutdownNoGoroutineLeak(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "<html>%s</html>", r.URL.Path)
	}))
	defer origin.Close()

	before := runtime.NumGoroutine()

	a, err := buildApp(options{
		capacity:       1 << 20,
		polSpec:        "SIZE",
		shards:         4,
		freshFor:       time.Hour,
		admin:          true,
		shadow:         "LRU,LFU",
		touchBuffer:    256,
		drainEvery:     5 * time.Millisecond,
		rebalanceEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.maint == nil || a.fleet == nil || a.admin == nil {
		t.Fatal("expected maintainer, fleet and admin server all live")
	}

	traffic := httptest.NewServer(a.mux)
	adminAddr, err := a.admin.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Drive traffic so every subsystem has work in flight, and hold an
	// SSE subscription open so the admin server has an active streamer
	// to tear down.
	sse, err := http.Get("http://" + adminAddr.String() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/doc%d.html", traffic.URL, i%7), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = strings.TrimPrefix(origin.URL, "http://")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	traffic.Close()
	a.Close()
	a.Close() // idempotent
	sse.Body.Close()

	// The maintainer, fleet worker, admin accept loop, SSE streamer and
	// snapshot ticker must all be gone. Poll briefly: handler goroutines
	// unwind asynchronously after Close returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Closed fleet still reports (for late scrapes) but accepts nothing.
	enq := a.fleet.Report().Enqueued
	a.fleet.Observe("http://late.test/x", 1, false)
	if got := a.fleet.Report().Enqueued; got != enq {
		t.Fatalf("fleet accepted an event after Close: %d != %d", got, enq)
	}
}

func adminGet(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(body), resp.StatusCode
}
