package main

import "testing"

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"1048576": 1048576,
		"64MiB":   64 << 20,
		"1.5GiB":  3 << 29,
		"10KiB":   10 << 10,
		"2GB":     2_000_000_000,
		"500KB":   500_000,
		" 3MB ":   3_000_000,
	}
	for in, want := range good {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "abc", "-5", "0", "MiB"} {
		if _, err := parseBytes(in); err == nil {
			t.Errorf("parseBytes(%q) accepted", in)
		}
	}
}
