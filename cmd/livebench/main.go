// Command livebench validates the simulator against the real system: it
// replays a synthetic workload twice — once through the trace-driven
// simulator and once over actual HTTP through the live caching proxy
// against a synthetic origin server — with the same removal policy and
// capacity, and compares the measured hit rates.
//
// Usage:
//
//	livebench -workload BL -scale 0.01 -policy SIZE -fraction 0.1
//	livebench -workload C -policy SIZE -shadow "LRU,LFU,SIZE/NREF"   # ghost caches, each cross-checked vs the simulator
//
// The workload is generated without size changes so both systems see the
// same consistency picture; the proxy's freshness window is effectively
// infinite, making its hit rule (URL cached) coincide with the
// simulator's (URL+size match); and the live store is seeded with the
// simulated cache's tiebreak stream, so even tie-heavy policies (LRU at
// one-second resolution, LFU) evict identically. The expected delta is
// exactly zero.
//
// With -metrics, both replays report through one obs.Registry — the
// simulated cache's hooks under sim.*, the live proxy and store under
// proxy.* / store.* — and the run ends with the registry exposition
// plus an event-level profile (eviction ages, occupancy) of the live
// store, so the counter cross-check mirrors the hit-rate delta.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"time"

	"webcache/internal/analysis"
	"webcache/internal/core"
	"webcache/internal/obs"
	"webcache/internal/origin"
	"webcache/internal/policy"
	"webcache/internal/proxy"
	"webcache/internal/sim"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// eventRingSize bounds the live store's event trace under -metrics;
// livebench replays are small, so this usually holds the whole run.
const eventRingSize = 1 << 16

func main() {
	var (
		wl       = flag.String("workload", "BL", "workload: U, G, C, BR, BL")
		scale    = flag.Float64("scale", 0.01, "workload scale (live replay is one HTTP request per trace line)")
		polSpec  = flag.String("policy", "SIZE", "removal policy for both systems")
		fraction = flag.Float64("fraction", 0.10, "cache size as a fraction of MaxNeeded")
		seed     = flag.Uint64("seed", 42, "workload seed")
		shards   = flag.Int("shards", 0, "live store shard count (0 = single-mutex store; 1-shard sharded replays byte-identically to it)")
		touchBuf = flag.Int("touch-buffer", 0, "live store touch-buffer slots (0 = synchronous hit path, the deterministic default the delta-0.00 check requires)")
		metrics  = flag.Bool("metrics", false, "report both replays through a shared metric registry and print it")
		shadow   = flag.String("shadow", "", "comma-separated candidate policies to run as ghost caches beside the live store; each is cross-checked exactly against a fresh simulator replay")
		traceN   = flag.Int("trace-sample", 0, "trace every nth live request's phase timeline (0 = off)")
		traceOut = flag.String("trace-out", "", "write the kept request span trees (plus the event ring under -metrics) as Chrome trace-event JSON to this file; implies -trace-sample 1 when unset")
	)
	flag.Parse()
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	sample := *traceN
	if *traceOut != "" && sample == 0 {
		sample = 1
	}
	if err := run(*wl, *scale, *polSpec, *fraction, *seed, *shards, *touchBuf, *shadow, sample, *traceOut, os.Stdout, reg); err != nil {
		fmt.Fprintln(os.Stderr, "livebench:", err)
		os.Exit(1)
	}
}

// run replays the workload through both systems. shards selects the
// live store: 0 is the single-mutex Store, N >= 1 an N-way
// ShardedStore (1 shard replays byte-identically to the single-mutex
// store; more shards partition capacity into per-shard quotas, so
// small deltas against the unsharded simulator are expected). touchBuf
// > 0 runs the live store's buffered hit path — the replay is
// single-client so every touch still lands, but drain timing may shift
// tie-heavy evictions, so the deterministic check keeps it at 0. When
// reg is non-nil both replays report into it and the run ends with the
// registry exposition and the live store's event profile. shadow, when
// non-empty, names candidate policies (comma-separated) to run as a
// ghost-cache fleet beside the live store; each shadow's end-of-run
// numbers are cross-checked exactly against a fresh simulator replay
// of the same trace — live observability must agree with the paper's
// simulator to the request. traceSample > 0 attaches an obs.Tracer to
// the live proxy (every nth request records its phase timeline); when
// traceOut is non-empty the kept span trees — merged with the event
// ring under -metrics — are written there as Chrome trace-event JSON,
// so a sampled miss renders parse → store.get → origin TTFB →
// admission → eviction spans in Perfetto next to residency spans.
func run(wl string, scale float64, polSpec string, fraction float64, seed uint64, shards, touchBuf int, shadow string, traceSample int, traceOut string, out io.Writer, reg *obs.Registry) error {
	cfg, err := workload.ByName(wl, seed)
	if err != nil {
		return err
	}
	cfg.Scale = scale
	// Align consistency semantics between the two systems: no document
	// modifications, no zero-size log noise.
	cfg.SizeChangeProb = 0
	cfg.ZeroSizeProb = 0
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		return err
	}

	base := sim.Experiment1(tr, seed+1)
	capacity := int64(fraction * float64(base.MaxNeeded))
	fmt.Fprintf(out, "workload %s: %d requests, MaxNeeded %.1f MB, cache %.1f MB, policy %s\n",
		tr.Name, len(tr.Requests), float64(base.MaxNeeded)/1e6, float64(capacity)/1e6, polSpec)

	// --- Simulated run (the proxy never caches dynamic documents, so
	// the simulator must not either).
	simPol, err := policy.Parse(polSpec, tr.Start)
	if err != nil {
		return err
	}
	simCfg := core.Config{
		Capacity:       capacity,
		Policy:         simPol,
		Seed:           seed + 2,
		ExcludeDynamic: true,
	}
	if reg != nil {
		simCfg.Hooks = simHooks(reg)
	}
	simCache := core.New(simCfg)
	for i := range tr.Requests {
		simCache.Access(&tr.Requests[i])
	}
	simStats := simCache.Stats()
	fmt.Fprintf(out, "simulated: HR %6.2f%%  WHR %6.2f%%  (%d evictions)\n",
		100*simStats.HitRate(), 100*simStats.WeightedHitRate(), simStats.Evictions)

	// --- Live run, with the same tiebreak stream as the simulated cache.
	var ring *obs.EventRing
	if reg != nil {
		ring = obs.NewEventRing(eventRingSize)
	}
	var shadowSpecs []string
	if shadow != "" {
		for _, s := range strings.Split(shadow, ",") {
			if s = strings.TrimSpace(s); s != "" {
				shadowSpecs = append(shadowSpecs, s)
			}
		}
	}
	var tracer *obs.Tracer
	if traceSample > 0 {
		// Real wall clock: the spans time actual HTTP work, even though
		// the store's eviction clock is driven by simulated time.
		tracer = obs.NewTracer(obs.TracerOptions{SampleEvery: traceSample})
	}
	liveHits, liveBytesHit, liveBytes, fleet, err := replayLive(tr, polSpec, capacity, seed+2, shards, touchBuf, shadowSpecs, tracer, out, reg, ring)
	if err != nil {
		return err
	}
	liveHR := float64(liveHits) / float64(len(tr.Requests))
	liveWHR := float64(liveBytesHit) / float64(liveBytes)
	fmt.Fprintf(out, "live:      HR %6.2f%%  WHR %6.2f%%\n", 100*liveHR, 100*liveWHR)
	fmt.Fprintf(out, "delta:     HR %+.2f points  WHR %+.2f points\n",
		100*(liveHR-simStats.HitRate()), 100*(liveWHR-simStats.WeightedHitRate()))

	if fleet != nil {
		if err := crossCheckShadows(tr, capacity, seed+2, fleet, out); err != nil {
			return err
		}
	}

	if tracer != nil {
		st := tracer.Stats()
		fmt.Fprintf(out, "tracing:   sampled %d, kept %d (%d flagged), discarded %d\n",
			st.Sampled, st.Kept, st.Flagged, st.Discarded)
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := obs.WriteCombinedChromeTrace(f, ring, tracer); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "tracing:   wrote Chrome trace to %s\n", traceOut)
		}
	}

	if reg != nil {
		// The counter-level cross-check: the simulated cache's hooks and
		// the live store's hooks landed in one registry, so agreement is
		// visible without rederiving rates.
		fmt.Fprintf(out, "registry:  sim hits %d / live hits %d, sim evictions %d / live evictions %d\n",
			reg.Counter("sim.hits").Load(), reg.Counter("store.hits").Load(),
			reg.Counter("sim.evictions").Load(), reg.Counter("store.evictions").Load())
		fmt.Fprintln(out, "--- registry ---")
		if err := reg.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out, "--- live store event profile ---")
		if err := analysis.AnalyzeEvents(ring).WriteReport(out); err != nil {
			return err
		}
	}
	return nil
}

// simHooks reports the simulated cache's events under the sim.* names,
// next to the live side's proxy.* / store.* counters.
func simHooks(reg *obs.Registry) core.CacheHooks {
	hits := reg.Counter("sim.hits")
	misses := reg.Counter("sim.misses")
	evictions := reg.Counter("sim.evictions")
	evictedBytes := reg.Counter("sim.evicted_bytes")
	inserts := reg.Counter("sim.inserts")
	return core.CacheHooks{
		OnHit:   func(*policy.Entry) { hits.Inc() },
		OnMiss:  func(int64, int64) { misses.Inc() },
		OnEvict: func(e *policy.Entry, now int64) { evictions.Inc(); evictedBytes.Add(e.Size) },
		OnAdd:   func(*policy.Entry) { inserts.Inc() },
	}
}

// replayLive drives every trace request through a real proxy + origin.
// cacheSeed matches the simulated cache's seed so per-entry tiebreak
// values coincide and tie-heavy policies (LRU, LFU) evict identically.
// When reg is non-nil, the proxy and its store report into it (and the
// store's events into ring). shadowSpecs, when non-empty, attaches a
// ghost-cache fleet fed off the proxy's request stream — queue sized
// to the trace so the replay is drop-free, clock and seed shared with
// the simulated side so the fleet's caches replay deterministically;
// the returned fleet is already closed (fully drained). tracer, when
// non-nil, records sampled requests' phase timelines.
func replayLive(tr *trace.Trace, polSpec string, capacity int64, cacheSeed uint64, shards, touchBuf int, shadowSpecs []string, tracer *obs.Tracer, out io.Writer, reg *obs.Registry, ring *obs.EventRing) (hits, bytesHit, bytesTotal int64, fleet *proxy.ShadowFleet, err error) {
	org := origin.FromTrace(tr)
	originTS := httptest.NewServer(org)
	defer originTS.Close()

	livePol, err := policy.Parse(polSpec, tr.Start)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	var store proxy.ObjectStore
	if shards >= 1 {
		store = proxy.NewShardedStore(capacity, shards, func() policy.Policy {
			p, _ := policy.Parse(polSpec, tr.Start)
			return p
		})
		fmt.Fprintf(out, "live store: %d-way sharded\n", shards)
	} else {
		store = proxy.NewStore(capacity, livePol)
	}
	if touchBuf > 0 {
		store.SetTouchBuffer(touchBuf)
		fmt.Fprintf(out, "live store: buffered hit path, %d touch slots\n", touchBuf)
	}
	// Mirror core.New's internal seed derivation so the per-entry random
	// tiebreak sequences of the two systems are identical.
	store.SetSeed(cacheSeed ^ 0x9e3779b97f4a7c15)
	// Drive the store's clock from the trace so time-based policies see
	// simulation time, not wall time.
	var simNow int64
	store.SetClock(func() time.Time { return time.Unix(simNow, 0) })

	srv := proxy.New(store)
	srv.Tracer = tracer
	if len(shadowSpecs) > 0 {
		fleet, err = proxy.NewShadowFleet(proxy.ShadowOptions{
			Policies:   shadowSpecs,
			Capacity:   capacity,
			QueueSlots: len(tr.Requests) + 64, // drop-free: every request fits
			DayStart:   tr.Start,
			Seed:       cacheSeed, // same rng stream as the simulated cache
			Clock:      func() int64 { return simNow },
		})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		defer fleet.Close()
		srv.Shadow = fleet
		fmt.Fprintf(out, "live store: shadowing %s\n", strings.Join(fleet.Policies(), ", "))
	}
	if reg != nil {
		srv.Metrics = proxy.NewMetrics(reg)
		store.SetHooks(proxy.StoreHooks(reg, ring))
	}
	srv.FreshFor = 100 * 365 * 24 * time.Hour // never revalidate
	srv.MaxObjectBytes = 64 << 20
	srv.Transport = origin.RewriteTransport(originTS.Listener.Addr().String())
	proxyTS := httptest.NewServer(srv)
	defer proxyTS.Close()

	proxyURL, err := url.Parse(proxyTS.URL)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	client := &http.Client{Transport: &http.Transport{
		Proxy:               http.ProxyURL(proxyURL),
		MaxIdleConnsPerHost: 16,
	}}

	for i := range tr.Requests {
		req := &tr.Requests[i]
		simNow = req.Time
		resp, err := client.Get(req.URL)
		if err != nil {
			return 0, 0, 0, nil, fmt.Errorf("request %d (%s): %w", i, req.URL, err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		bytesTotal += n
		if v := resp.Header.Get("X-Cache"); v == "HIT" || v == "REVALIDATED" {
			hits++
			bytesHit += n
		}
	}
	fetches, originBytes := org.Fetches()
	fmt.Fprintf(out, "origin:    %d fetches, %.1f MB sent (of %.1f MB requested)\n",
		fetches, float64(originBytes)/1e6, float64(bytesTotal)/1e6)
	if fleet != nil {
		fleet.Close() // stop the worker and drain every queued event
	}
	return hits, bytesHit, bytesTotal, fleet, nil
}

// crossCheckShadows replays the trace through a fresh simulator for
// each shadow policy and demands exact agreement with the ghost
// cache's end-of-run numbers — the invariant tying live observability
// back to the paper's simulator. Any mismatch (or a dropped event,
// which would invalidate the comparison) is an error.
func crossCheckShadows(tr *trace.Trace, capacity int64, cacheSeed uint64, fleet *proxy.ShadowFleet, out io.Writer) error {
	rep := fleet.Report()
	fmt.Fprintf(out, "--- shadow fleet cross-check (%d policies, %d events, %d dropped) ---\n",
		len(rep.Shadows), rep.Processed, rep.Dropped)
	if rep.Dropped != 0 {
		return fmt.Errorf("shadow queue dropped %d events; cross-check needs a drop-free run", rep.Dropped)
	}
	var mismatches int
	for i, spec := range fleet.Policies() {
		pol, err := policy.Parse(spec, tr.Start)
		if err != nil {
			return err
		}
		sim := core.New(core.Config{
			Capacity:       capacity,
			Policy:         pol,
			Seed:           cacheSeed,
			ExcludeDynamic: true,
		})
		for j := range tr.Requests {
			sim.Access(&tr.Requests[j])
		}
		st := sim.Stats()
		sh := rep.Shadows[i]
		verdict := "exact match"
		if sh.Requests != st.Requests || sh.Hits != st.Hits {
			verdict = fmt.Sprintf("MISMATCH (sim %d/%d)", st.Hits, st.Requests)
			mismatches++
		}
		fmt.Fprintf(out, "shadow %-12s HR %6.2f%%  WHR %6.2f%%  (%d hits / %d requests)  %s\n",
			sh.Policy, 100*sh.HR, 100*sh.WHR, sh.Hits, sh.Requests, verdict)
	}
	if mismatches > 0 {
		return fmt.Errorf("%d shadow(s) disagree with the simulator", mismatches)
	}
	return nil
}
