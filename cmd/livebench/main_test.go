package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestLiveMatchesSimulated is the validation this command exists for:
// the live proxy replay must agree with the simulator exactly when the
// semantics are aligned.
func TestLiveMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	for _, polSpec := range []string{"SIZE", "LRU", "LFU"} {
		var out bytes.Buffer
		if err := run("C", 0.005, polSpec, 0.10, 7, &out); err != nil {
			t.Fatalf("%s: %v", polSpec, err)
		}
		text := out.String()
		if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
			t.Errorf("%s: live and simulated disagree:\n%s", polSpec, text)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run("ZZ", 0.01, "SIZE", 0.1, 1, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("C", 0.005, "NOPE", 0.1, 1, &out); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestOutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	var out bytes.Buffer
	if err := run("BL", 0.003, "SIZE", 0.10, 3, &out); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{
		`workload BL: \d+ requests`,
		`simulated: HR +[0-9.]+%`,
		`origin: +\d+ fetches`,
		`live: +HR +[0-9.]+%`,
	} {
		if !regexp.MustCompile(pat).MatchString(out.String()) {
			t.Errorf("output missing /%s/:\n%s", pat, out.String())
		}
	}
}
