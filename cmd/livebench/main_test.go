package main

import (
	"bytes"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"

	"webcache/internal/obs"
)

// TestLiveMatchesSimulated is the validation this command exists for:
// the live proxy replay must agree with the simulator exactly when the
// semantics are aligned.
func TestLiveMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	for _, polSpec := range []string{"SIZE", "LRU", "LFU"} {
		var out bytes.Buffer
		if err := run("C", 0.005, polSpec, 0.10, 7, 0, 0, "", 0, "", &out, nil); err != nil {
			t.Fatalf("%s: %v", polSpec, err)
		}
		text := out.String()
		if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
			t.Errorf("%s: live and simulated disagree:\n%s", polSpec, text)
		}
	}
}

// TestShardedOneShardMatchesSimulated repeats the validation with the
// live side on a 1-shard ShardedStore: one shard holds the full
// capacity and the base tiebreak seed, so the sharded path must replay
// byte-identically to the single-mutex store — and therefore match the
// simulator exactly too.
func TestShardedOneShardMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	for _, polSpec := range []string{"SIZE", "LRU"} {
		var out bytes.Buffer
		if err := run("C", 0.005, polSpec, 0.10, 7, 1, 0, "", 0, "", &out, nil); err != nil {
			t.Fatalf("%s: %v", polSpec, err)
		}
		text := out.String()
		if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
			t.Errorf("%s: 1-shard sharded replay and simulated disagree:\n%s", polSpec, text)
		}
	}
}

// TestBufferedReplayMatchesSimulated runs the live side with the
// buffered hit path on. The replay drives one request at a time, so the
// touch stream has a single logical writer: with a ring deep enough to
// never drop, every recorded touch is replayed in order before any
// eviction decision, and the buffered store must still match the
// simulator to the request — the strongest end-to-end statement of the
// buffered path's sequential equivalence.
func TestBufferedReplayMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	for _, polSpec := range []string{"SIZE", "LRU"} {
		var out bytes.Buffer
		if err := run("C", 0.005, polSpec, 0.10, 7, 0, 1<<15, "", 0, "", &out, nil); err != nil {
			t.Fatalf("%s: %v", polSpec, err)
		}
		text := out.String()
		if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
			t.Errorf("%s: buffered live replay and simulated disagree:\n%s", polSpec, text)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run("ZZ", 0.01, "SIZE", 0.1, 1, 0, 0, "", 0, "", &out, nil); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("C", 0.005, "NOPE", 0.1, 1, 0, 0, "", 0, "", &out, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestRegistryCrossCheck runs with the shared registry on: the
// simulated cache's sim.* counters and the live store's store.*
// counters must agree exactly, mirroring the hit-rate delta, and the
// report must end with the registry exposition and the event profile.
func TestRegistryCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	reg := obs.NewRegistry()
	var out bytes.Buffer
	if err := run("C", 0.005, "LRU", 0.10, 7, 0, 0, "", 0, "", &out, reg); err != nil {
		t.Fatal(err)
	}
	pairs := map[string]string{
		"sim.hits":      "store.hits",
		"sim.misses":    "store.misses",
		"sim.evictions": "store.evictions",
		"sim.inserts":   "store.inserts",
	}
	for simName, liveName := range pairs {
		simV, liveV := reg.Counter(simName).Load(), reg.Counter(liveName).Load()
		if simV == 0 {
			t.Errorf("%s is zero — hooks not attached?", simName)
		}
		if simV != liveV {
			t.Errorf("%s = %d but %s = %d", simName, simV, liveName, liveV)
		}
	}
	if got := reg.Counter("proxy.requests").Load(); got == 0 {
		t.Error("proxy.requests is zero — proxy metrics not attached")
	}
	if reg.Histogram("proxy.latency_ns").Count() == 0 {
		t.Error("proxy latency histogram empty")
	}
	text := out.String()
	for _, want := range []string{"registry:  sim hits", "--- registry ---", "proxy.latency_ns.p50", "--- live store event profile ---", "events profiled:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestShadowCrossCheck is the tentpole acceptance criterion: with a
// ghost-cache fleet riding the live replay (queue sized to the trace,
// so drop-free), every shadow policy's end-of-run HR must equal a
// fresh simulator replay of that policy exactly. run itself errors on
// any mismatch or drop; the test additionally pins the report shape.
func TestShadowCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	var out bytes.Buffer
	if err := run("C", 0.005, "SIZE", 0.10, 7, 0, 0, "LRU,SIZE,LFU,SIZE/NREF", 0, "", &out, nil); err != nil {
		t.Fatalf("shadowed run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
		t.Errorf("live and simulated disagree:\n%s", text)
	}
	if !strings.Contains(text, "0 dropped") {
		t.Errorf("shadow run was not drop-free:\n%s", text)
	}
	if got := strings.Count(text, "exact match"); got != 4 {
		t.Errorf("%d shadows match exactly, want 4:\n%s", got, text)
	}
	if strings.Contains(text, "MISMATCH") {
		t.Errorf("shadow/simulator mismatch:\n%s", text)
	}
	// The deployed policy (SIZE) runs both live and as a shadow: its
	// shadow row must agree with the live store's own hit count, closing
	// the loop between the two observability paths.
	mLive := regexp.MustCompile(`live: +HR +([0-9.]+)%`).FindStringSubmatch(text)
	mShadow := regexp.MustCompile(`shadow SIZE +HR +([0-9.]+)%`).FindStringSubmatch(text)
	if mLive == nil || mShadow == nil || mLive[1] != mShadow[1] {
		t.Errorf("deployed-policy shadow HR disagrees with live HR (%v vs %v):\n%s", mLive, mShadow, text)
	}
}

// TestTraceExport is the tracing acceptance criterion: a livebench run
// with -trace-sample 1 -trace-out must export Chrome trace-event JSON
// in which a sampled miss that evicted renders its parse → store.get →
// origin TTFB → admission → eviction spans as a correctly nested tree
// (every child span inside its request's parent span, on the request
// tree pid).
func TestTraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	traceFile := t.TempDir() + "/trace.json"
	var out bytes.Buffer
	if err := run("C", 0.005, "SIZE", 0.10, 7, 0, 0, "", 1, traceFile, &out, nil); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{
		`tracing:   sampled \d+, kept \d+ \(\d+ flagged\)`,
		`tracing:   wrote Chrome trace to `,
	} {
		if !regexp.MustCompile(pat).MatchString(out.String()) {
			t.Errorf("report missing /%s/:\n%s", pat, out.String())
		}
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	var events []ev
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}

	// Collect the request trees: parent "request" events and their
	// children keyed by tid (one tid per sampled request).
	parents := map[int]ev{}
	children := map[int][]ev{}
	for _, e := range events {
		if e.Pid != 2 || e.Ph != "X" {
			continue
		}
		if e.Name == "request" {
			parents[e.Tid] = e
		} else {
			children[e.Tid] = append(children[e.Tid], e)
		}
	}
	if len(parents) == 0 {
		t.Fatalf("no request span trees in export:\n%s", raw)
	}

	// Every child must nest inside its parent's [ts, ts+dur] window.
	for tid, kids := range children {
		p, ok := parents[tid]
		if !ok {
			t.Fatalf("tid %d has child spans but no request parent", tid)
		}
		for _, k := range kids {
			if k.Ts < p.Ts || k.Ts+k.Dur > p.Ts+p.Dur {
				t.Errorf("span %s [%d,%d] escapes its request window [%d,%d]",
					k.Name, k.Ts, k.Ts+k.Dur, p.Ts, p.Ts+p.Dur)
			}
		}
	}

	// At least one kept miss must have triggered evictions and carry the
	// full phase chain the issue names.
	wantPhases := []string{"parse", "store.get", "origin.ttfb", "admit", "evict"}
	found := false
	for tid, p := range parents {
		if p.Args["verdict"] != "MISS" || p.Args["evictions"] == nil {
			continue
		}
		have := map[string]bool{}
		for _, k := range children[tid] {
			have[k.Name] = true
		}
		complete := true
		for _, ph := range wantPhases {
			if !have[ph] {
				complete = false
				break
			}
		}
		if complete {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no sampled miss renders the full %v chain:\n%s", wantPhases, raw)
	}
}

func TestOutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	var out bytes.Buffer
	if err := run("BL", 0.003, "SIZE", 0.10, 3, 0, 0, "", 0, "", &out, nil); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{
		`workload BL: \d+ requests`,
		`simulated: HR +[0-9.]+%`,
		`origin: +\d+ fetches`,
		`live: +HR +[0-9.]+%`,
	} {
		if !regexp.MustCompile(pat).MatchString(out.String()) {
			t.Errorf("output missing /%s/:\n%s", pat, out.String())
		}
	}
}
