package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"webcache/internal/obs"
)

// TestLiveMatchesSimulated is the validation this command exists for:
// the live proxy replay must agree with the simulator exactly when the
// semantics are aligned.
func TestLiveMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	for _, polSpec := range []string{"SIZE", "LRU", "LFU"} {
		var out bytes.Buffer
		if err := run("C", 0.005, polSpec, 0.10, 7, 0, 0, "", &out, nil); err != nil {
			t.Fatalf("%s: %v", polSpec, err)
		}
		text := out.String()
		if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
			t.Errorf("%s: live and simulated disagree:\n%s", polSpec, text)
		}
	}
}

// TestShardedOneShardMatchesSimulated repeats the validation with the
// live side on a 1-shard ShardedStore: one shard holds the full
// capacity and the base tiebreak seed, so the sharded path must replay
// byte-identically to the single-mutex store — and therefore match the
// simulator exactly too.
func TestShardedOneShardMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	for _, polSpec := range []string{"SIZE", "LRU"} {
		var out bytes.Buffer
		if err := run("C", 0.005, polSpec, 0.10, 7, 1, 0, "", &out, nil); err != nil {
			t.Fatalf("%s: %v", polSpec, err)
		}
		text := out.String()
		if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
			t.Errorf("%s: 1-shard sharded replay and simulated disagree:\n%s", polSpec, text)
		}
	}
}

// TestBufferedReplayMatchesSimulated runs the live side with the
// buffered hit path on. The replay drives one request at a time, so the
// touch stream has a single logical writer: with a ring deep enough to
// never drop, every recorded touch is replayed in order before any
// eviction decision, and the buffered store must still match the
// simulator to the request — the strongest end-to-end statement of the
// buffered path's sequential equivalence.
func TestBufferedReplayMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	for _, polSpec := range []string{"SIZE", "LRU"} {
		var out bytes.Buffer
		if err := run("C", 0.005, polSpec, 0.10, 7, 0, 1<<15, "", &out, nil); err != nil {
			t.Fatalf("%s: %v", polSpec, err)
		}
		text := out.String()
		if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
			t.Errorf("%s: buffered live replay and simulated disagree:\n%s", polSpec, text)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run("ZZ", 0.01, "SIZE", 0.1, 1, 0, 0, "", &out, nil); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("C", 0.005, "NOPE", 0.1, 1, 0, 0, "", &out, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestRegistryCrossCheck runs with the shared registry on: the
// simulated cache's sim.* counters and the live store's store.*
// counters must agree exactly, mirroring the hit-rate delta, and the
// report must end with the registry exposition and the event profile.
func TestRegistryCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	reg := obs.NewRegistry()
	var out bytes.Buffer
	if err := run("C", 0.005, "LRU", 0.10, 7, 0, 0, "", &out, reg); err != nil {
		t.Fatal(err)
	}
	pairs := map[string]string{
		"sim.hits":      "store.hits",
		"sim.misses":    "store.misses",
		"sim.evictions": "store.evictions",
		"sim.inserts":   "store.inserts",
	}
	for simName, liveName := range pairs {
		simV, liveV := reg.Counter(simName).Load(), reg.Counter(liveName).Load()
		if simV == 0 {
			t.Errorf("%s is zero — hooks not attached?", simName)
		}
		if simV != liveV {
			t.Errorf("%s = %d but %s = %d", simName, simV, liveName, liveV)
		}
	}
	if got := reg.Counter("proxy.requests").Load(); got == 0 {
		t.Error("proxy.requests is zero — proxy metrics not attached")
	}
	if reg.Histogram("proxy.latency_ns").Count() == 0 {
		t.Error("proxy latency histogram empty")
	}
	text := out.String()
	for _, want := range []string{"registry:  sim hits", "--- registry ---", "proxy.latency_ns.p50", "--- live store event profile ---", "events profiled:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestShadowCrossCheck is the tentpole acceptance criterion: with a
// ghost-cache fleet riding the live replay (queue sized to the trace,
// so drop-free), every shadow policy's end-of-run HR must equal a
// fresh simulator replay of that policy exactly. run itself errors on
// any mismatch or drop; the test additionally pins the report shape.
func TestShadowCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	var out bytes.Buffer
	if err := run("C", 0.005, "SIZE", 0.10, 7, 0, 0, "LRU,SIZE,LFU,SIZE/NREF", &out, nil); err != nil {
		t.Fatalf("shadowed run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "delta:     HR +0.00 points  WHR +0.00 points") {
		t.Errorf("live and simulated disagree:\n%s", text)
	}
	if !strings.Contains(text, "0 dropped") {
		t.Errorf("shadow run was not drop-free:\n%s", text)
	}
	if got := strings.Count(text, "exact match"); got != 4 {
		t.Errorf("%d shadows match exactly, want 4:\n%s", got, text)
	}
	if strings.Contains(text, "MISMATCH") {
		t.Errorf("shadow/simulator mismatch:\n%s", text)
	}
	// The deployed policy (SIZE) runs both live and as a shadow: its
	// shadow row must agree with the live store's own hit count, closing
	// the loop between the two observability paths.
	mLive := regexp.MustCompile(`live: +HR +([0-9.]+)%`).FindStringSubmatch(text)
	mShadow := regexp.MustCompile(`shadow SIZE +HR +([0-9.]+)%`).FindStringSubmatch(text)
	if mLive == nil || mShadow == nil || mLive[1] != mShadow[1] {
		t.Errorf("deployed-policy shadow HR disagrees with live HR (%v vs %v):\n%s", mLive, mShadow, text)
	}
}

func TestOutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP replay in -short mode")
	}
	var out bytes.Buffer
	if err := run("BL", 0.003, "SIZE", 0.10, 3, 0, 0, "", &out, nil); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{
		`workload BL: \d+ requests`,
		`simulated: HR +[0-9.]+%`,
		`origin: +\d+ fetches`,
		`live: +HR +[0-9.]+%`,
	} {
		if !regexp.MustCompile(pat).MatchString(out.String()) {
			t.Errorf("output missing /%s/:\n%s", pat, out.String())
		}
	}
}
