package main

import (
	"bufio"
	"os"
	"path/filepath"
	"testing"

	"webcache/internal/httpstream"
)

func TestSynthesizeAndFilter(t *testing.T) {
	pcapPath := filepath.Join(t.TempDir(), "c.pcap")
	if err := synthesize("C", pcapPath, 0.002, 7); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(pcapPath)
	if err != nil || st.Size() == 0 {
		t.Fatalf("capture file: %v, %v", st, err)
	}

	f, err := os.Open(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	flt := httpstream.NewFilter()
	tr, err := flt.Run(bufio.NewReader(f), "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("filter reconstructed nothing")
	}
	if flt.Packets == 0 || flt.Decoded == 0 {
		t.Fatalf("filter stats %+v", flt)
	}
}

func TestSynthesizeUnknownWorkload(t *testing.T) {
	if err := synthesize("ZZ", filepath.Join(t.TempDir(), "x.pcap"), 0.01, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFilterMissingFile(t *testing.T) {
	if err := filter("/nonexistent/file.pcap", 80); err == nil {
		t.Fatal("missing pcap accepted")
	}
}
