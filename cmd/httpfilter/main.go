// Command httpfilter is the §2.1 collection filter: it reads a pcap
// capture of port-80 traffic, reassembles the TCP streams, decodes the
// HTTP transactions, and writes a common-log-format trace — the Go
// equivalent of the PERL filter the paper ran over its tcpdump output.
//
// It can also synthesize a capture from a workload first, demonstrating
// the whole pipeline without real traffic:
//
//	httpfilter -synth BL -scale 0.01 -pcap /tmp/bl.pcap   # make a capture
//	httpfilter -pcap /tmp/bl.pcap > bl.log                # filter it
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"webcache/internal/capture"
	"webcache/internal/httpstream"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

func main() {
	var (
		pcapPath = flag.String("pcap", "", "pcap file to read (or write, with -synth)")
		synth    = flag.String("synth", "", "synthesize a capture from this workload (U, G, C, BR, BL) instead of filtering")
		scale    = flag.Float64("scale", 0.01, "workload scale for -synth")
		seed     = flag.Uint64("seed", 42, "seed for -synth")
		port     = flag.Uint("port", 80, "server TCP port to filter")
	)
	flag.Parse()

	if *pcapPath == "" {
		fmt.Fprintln(os.Stderr, "httpfilter: -pcap is required")
		os.Exit(2)
	}
	var err error
	if *synth != "" {
		err = synthesize(*synth, *pcapPath, *scale, *seed)
	} else {
		err = filter(*pcapPath, uint16(*port))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpfilter:", err)
		os.Exit(1)
	}
}

// synthesize writes a packet capture of the workload to pcapPath.
func synthesize(wl, pcapPath string, scale float64, seed uint64) error {
	cfg, err := workload.ByName(wl, seed)
	if err != nil {
		return err
	}
	cfg.Scale = scale
	tr, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	w := capture.NewWriter(bw, 0)
	if err := capture.NewSynthesizer(seed).WriteTrace(tr, w); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "httpfilter: wrote capture of %d requests to %s\n", len(tr.Requests), pcapPath)
	return nil
}

// filter reads pcapPath and writes common log format to stdout.
func filter(pcapPath string, port uint16) error {
	f, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	flt := httpstream.NewFilter()
	flt.Port = port
	tr, err := flt.Run(bufio.NewReaderSize(f, 1<<20), pcapPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "httpfilter: %d packets, %d TCP port-%d, %d transactions\n",
		flt.Packets, flt.Decoded, port, len(tr.Requests))
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if err := trace.WriteCLF(w, tr, true); err != nil {
		return err
	}
	return w.Flush()
}
