// Command websim runs the paper's experiments on the synthetic workloads
// (or on a real common-log-format trace) and prints the corresponding
// tables and figure series.
//
// Usage:
//
//	websim -exp 1 -workload BL                 # Experiment 1 (Figs. 3-7)
//	websim -exp 2 -workload U -fraction 0.1    # Experiment 2 (Figs. 8-12)
//	websim -exp 2s -workload G                 # secondary keys (Fig. 15)
//	websim -exp 2all -workload BL              # the full 36-policy design
//	websim -exp classics -workload BR          # FIFO/LRU/LFU/LRU-MIN/...
//	websim -exp 3 -workload BR                 # two-level cache (Figs. 16-18)
//	websim -exp 4 -workload BR                 # partitioned cache (Figs. 19-20)
//	websim -exp 5 -workload BL                 # shared L2 across client groups (§5)
//	websim -exp 6 -workload BL                 # latency saved per policy (§1/§5)
//	websim -exp tables                         # Tables 1 and 3
//	websim -exp 4 -trace access.log            # run on a real CLF trace
//
// -scale shrinks the synthetic workloads for quick runs; -series prints
// the full per-day figure series instead of summaries. -workers fans
// the independent replays of an experiment across a goroutine pool
// (default GOMAXPROCS); results are identical for any worker count.
// -trace-cache DIR caches the validated synthetic workload in DIR as a
// binary trace (written by the first run, reloaded by later ones), so a
// multi-invocation study decodes each corpus once. -cpuprofile and
// -memprofile write pprof profiles of the run, the inputs to the
// hot-path work tracked in BENCH_replay.json.
//
// Observability (internal/obs; overhead only when enabled, zero when
// off):
//
//	websim -exp 2all -metrics-out exp2.jsonl   # per-replay metric snapshots (JSONL)
//	websim -exp 2all -progress                 # live replays-completed/ETA on stderr
//	websim -exp 2all -listen :8082             # live introspection endpoints
//	websim -version                            # build/revision stamp
//
// -metrics-out streams one JSONL record per replay (hits, misses,
// evictions, evicted bytes, heap peak, occupancy high water,
// ns/request) between an attributable header (git_rev, flags) and an
// end-of-run summary (runner speedup, queue wait, aggregate event
// counters). With observability on, replays also run under pprof
// labels (policy=, workload=, experiment=), so -cpuprofile samples
// attribute per policy. -listen serves the live introspection surface
// while experiments run: /metrics, /events (SSE progress frames and
// replay snapshots), /trace (Chrome trace-event JSON of recent cache
// events), /buildinfo and /debug/pprof/. Simulation output on stdout
// is byte-identical with observability on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/sim"
	"webcache/internal/stats"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "1", "experiment: 1, 2, 2s, 2all, classics, 3, 4, 5, 6, table4, tables, all")
		wl         = flag.String("workload", "BL", "workload: U, G, C, BR, BL")
		traceFile  = flag.String("trace", "", "run on this common-log-format file instead of a synthetic workload")
		traceCache = flag.String("trace-cache", "", "cache validated synthetic workloads as binary traces in this directory")
		fraction   = flag.Float64("fraction", 0.10, "cache size as a fraction of MaxNeeded")
		scale      = flag.Float64("scale", 1.0, "synthetic workload scale (1.0 = paper volume)")
		seed       = flag.Uint64("seed", 42, "workload generation seed")
		series     = flag.Bool("series", false, "print full per-day series where applicable")
		plot       = flag.Bool("plot", false, "draw ASCII figures for per-day series")
		workers    = flag.Int("workers", 0, "parallel replay workers (0 = GOMAXPROCS); results are identical for any value")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
		metricsOut = flag.String("metrics-out", "", "stream per-replay metric snapshots to this file as JSONL")
		progress   = flag.Bool("progress", false, "show a live replays-completed/ETA ticker on stderr")
		listen     = flag.String("listen", "", "serve live introspection endpoints on this address (e.g. :8082)")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("websim", obs.BuildInfo())
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "websim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "websim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	err := run(os.Stdout, runConfig{
		exp: *exp, wl: *wl, traceFile: *traceFile, traceCache: *traceCache,
		fraction: *fraction, scale: *scale, seed: *seed, workers: *workers,
		series: *series, plot: *plot,
		metricsOut: *metricsOut, progress: *progress, listen: *listen,
	})

	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "websim:", merr)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "websim:", merr)
			os.Exit(1)
		}
		f.Close()
	}

	if err != nil {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		fmt.Fprintln(os.Stderr, "websim:", err)
		os.Exit(1)
	}
}

// runConfig carries one invocation's flags; the golden tests drive run
// directly with it.
type runConfig struct {
	exp, wl, traceFile, traceCache string
	fraction, scale                float64
	seed                           uint64
	workers                        int
	series, plot                   bool
	// metricsOut streams per-replay JSONL snapshots to this file;
	// progress renders a live ticker on progressW (os.Stderr when nil —
	// tests inject a buffer); listen serves the live introspection
	// endpoints (metrics, SSE replay stream, Chrome trace, pprof) on an
	// address. Any of the three enables the observability layer.
	metricsOut string
	progress   bool
	progressW  io.Writer
	listen     string
	onListen   func(net.Addr) // test hook: called with the bound introspection address
}

func run(out io.Writer, rc runConfig) error {
	runner := sim.NewRunner(sim.RunnerConfig{Workers: rc.workers})
	if rc.metricsOut != "" || rc.progress || rc.listen != "" {
		stop, err := enableObservability(runner, rc)
		if err != nil {
			return err
		}
		defer stop()
	}
	exp, fraction, seed := rc.exp, rc.fraction, rc.seed
	if exp == "tables" {
		fmt.Fprintln(out, "Table 1 — sorting keys")
		fmt.Fprintln(out, sim.RenderTable1())
		fmt.Fprintln(out, "Table 3 — literature policies")
		fmt.Fprintln(out, sim.RenderTable3())
		return nil
	}

	tr, err := loadTrace(rc.wl, rc.traceFile, rc.traceCache, rc.scale, seed)
	if err != nil {
		return err
	}

	if exp == "table4" {
		fmt.Fprintf(out, "Table 4 — file type distribution, workload %s\n", tr.Name)
		fmt.Fprintln(out, sim.RenderTypeMix(tr))
		return nil
	}

	base := sim.Experiment1(tr, seed+1)
	switch exp {
	case "1":
		fmt.Fprintln(out, sim.RenderExp1(base, rc.series))
		if rc.plot {
			fmt.Fprintln(out, stats.PlotPercentSeries("Figs. 3-7: infinite-cache hit rates, 7-day moving average (%)",
				map[string][]stats.DayPoint{
					"HR":  base.Rates.HR.MovingAverage(),
					"WHR": base.Rates.WHR.MovingAverage(),
				}))
		}
	case "2":
		res := sim.Experiment2R(runner, tr, base, policy.PrimaryCombos(), fraction, seed+2)
		fmt.Fprintln(out, sim.RenderExp2(res))
		if rc.plot {
			named := map[string][]stats.DayPoint{}
			for _, run := range res.Runs {
				switch run.Policy {
				case "SIZE/RANDOM", "ETIME/RANDOM", "ATIME/RANDOM", "NREF/RANDOM":
					named[run.Policy] = run.Rates.HR.RatioTo(base.Rates.HR)
				}
			}
			fmt.Fprintln(out, stats.PlotPercentSeries("Figs. 8-12: % of infinite-cache HR", named))
		}
		if rc.series {
			for _, name := range []string{"SIZE/RANDOM", "ETIME/RANDOM", "ATIME/RANDOM", "NREF/RANDOM"} {
				fmt.Fprintln(out, sim.RenderExp2Series(res, name))
			}
		}
	case "2all":
		res := sim.Experiment2R(runner, tr, base, policy.AllCombos(), fraction, seed+2)
		fmt.Fprintln(out, sim.RenderExp2(res))
	case "2s":
		res := sim.Experiment2SecondaryR(runner, tr, base, fraction, seed+3)
		fmt.Fprintln(out, sim.RenderExp2Secondary(res))
	case "classics":
		res := sim.ExperimentClassicsR(runner, tr, base, fraction, seed+4)
		fmt.Fprintln(out, sim.RenderExp2(res))
	case "3":
		res3 := sim.Experiment3(tr, base, fraction, seed+5)
		fmt.Fprintln(out, sim.RenderExp3(res3, rc.series))
		if rc.plot {
			fmt.Fprintln(out, stats.PlotPercentSeries("Figs. 16-18: second-level cache rates over all requests (%)",
				map[string][]stats.DayPoint{
					"L2 HR":  res3.L2HR.MovingAverage(),
					"L2 WHR": res3.L2WHR.MovingAverage(),
				}))
		}
	case "4":
		fmt.Fprintln(out, sim.RenderExp4(sim.Experiment4R(runner, tr, base, fraction, seed+6)))
	case "5":
		fmt.Fprintln(out, sim.RenderExp5(sim.Experiment5R(runner, tr, base, 4, fraction, seed+7)))
	case "6":
		res, err := sim.Experiment6R(runner, tr, base,
			[]string{"SIZE", "LATENCY", "LRU", "NREF", "GD-Size(1)", "GD-Latency"},
			fraction, nil, seed+8)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, sim.RenderExp6(res))
	case "all":
		fmt.Fprintln(out, sim.RenderExp1(base, false))
		fmt.Fprintln(out, sim.RenderExp2(sim.Experiment2R(runner, tr, base, policy.PrimaryCombos(), fraction, seed+2)))
		fmt.Fprintln(out, sim.RenderExp2Secondary(sim.Experiment2SecondaryR(runner, tr, base, fraction, seed+3)))
		fmt.Fprintln(out, sim.RenderExp3(sim.Experiment3(tr, base, fraction, seed+5), false))
		fmt.Fprintln(out, sim.RenderExp4(sim.Experiment4R(runner, tr, base, fraction, seed+6)))
		fmt.Fprintln(out, sim.RenderExp5(sim.Experiment5R(runner, tr, base, 4, fraction, seed+7)))
		res6, err := sim.Experiment6R(runner, tr, base,
			[]string{"SIZE", "LATENCY", "LRU", "NREF", "GD-Size(1)", "GD-Latency"},
			fraction, nil, seed+8)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, sim.RenderExp6(res6))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// eventRingSize is the live trace window when -listen is set: the most
// recent cache events retained for /trace and eviction-age profiling.
const eventRingSize = 1 << 16

// enableObservability wires the sim-wide observer from the run's
// flags: a JSONL metric stream (header stamped with git_rev and the
// invocation), a stderr progress ticker, a live introspection server,
// or any combination. The returned stop function emits the end-of-run
// summary, detaches the observer, and closes the metrics file and the
// server.
func enableObservability(runner *sim.Runner, rc runConfig) (stop func(), err error) {
	var f *os.File
	var mw io.Writer
	if rc.metricsOut != "" {
		f, err = os.Create(rc.metricsOut)
		if err != nil {
			return nil, err
		}
		mw = f
	}
	var prog *obs.Progress
	switch {
	case rc.progress:
		pw := rc.progressW
		if pw == nil {
			pw = os.Stderr
		}
		prog = obs.NewProgress(pw, "websim", time.Second)
		prog.Start()
	case rc.listen != "":
		// Counter-only progress: feeds the live /events poll frame but
		// renders nothing (nil writer, ticker never started).
		prog = obs.NewProgress(nil, "websim", time.Second)
	}
	var ring *obs.EventRing
	var events *obs.Broadcaster
	if rc.listen != "" {
		ring = obs.NewEventRing(eventRingSize)
		events = obs.NewBroadcaster()
	}
	o := obs.New(obs.Options{
		Metrics: mw,
		Meta: map[string]any{
			"tool":     "websim",
			"git_rev":  obs.GitRev(),
			"exp":      rc.exp,
			"workload": rc.wl,
			"fraction": rc.fraction,
			"scale":    rc.scale,
			"seed":     rc.seed,
			"workers":  runner.Workers(),
		},
		Progress: prog,
		Ring:     ring,
		Events:   events,
	})
	o.SetExperiment(rc.exp)

	var srv *obs.Server
	if rc.listen != "" {
		srv = obs.NewServer(obs.ServerOptions{
			Registry:         o.Registry(),
			Ring:             ring,
			Events:           events,
			Snapshot:         func() any { return progressFrame(rc.exp, prog) },
			SnapshotInterval: time.Second,
			BuildMeta: map[string]any{
				"cmd":      "websim",
				"exp":      rc.exp,
				"workload": rc.wl,
			},
		})
		addr, err := srv.Start(rc.listen)
		if err != nil {
			if prog != nil {
				prog.Stop()
			}
			if f != nil {
				f.Close()
			}
			return nil, err
		}
		// Stderr, like the progress ticker: stdout carries the
		// experiment tables and must stay byte-identical.
		fmt.Fprintf(os.Stderr, "websim: introspection endpoints on http://%s/ (metrics, events, trace, pprof)\n", addr)
		if rc.onListen != nil {
			rc.onListen(addr)
		}
	}
	sim.Observer = o
	return func() {
		if err := sim.CloseObserver(runner); err != nil {
			fmt.Fprintln(os.Stderr, "websim: writing metrics summary:", err)
		}
		if srv != nil {
			srv.Close()
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "websim: closing metrics file:", err)
			}
		}
	}, nil
}

// progressFrame is the /events poll payload: the experiment name and
// the replays-completed counters the progress surface tracks.
func progressFrame(exp string, prog *obs.Progress) any {
	done, total := prog.Counts()
	return map[string]any{
		"exp":           exp,
		"replays_done":  done,
		"replays_total": total,
		"progress":      prog.Line(),
	}
}

// loadTrace returns the validated trace from a file, the binary trace
// cache, or a freshly generated synthetic workload.
func loadTrace(wl, traceFile, traceCache string, scale float64, seed uint64) (*trace.Trace, error) {
	if traceFile != "" {
		raw, stats, err := trace.ReadCLFFile(traceFile, traceFile)
		if err != nil {
			return nil, err
		}
		if stats.Malformed > 0 {
			fmt.Fprintf(os.Stderr, "websim: skipped %d malformed lines (first: %v)\n",
				stats.Malformed, stats.FirstError)
		}
		valid, vstats := trace.Validate(raw)
		fmt.Fprintf(os.Stderr, "websim: %d of %d log lines valid (%.1f%% size changes among re-references)\n",
			vstats.Kept, vstats.Input, 100*vstats.SizeChangeFraction())
		return valid, nil
	}
	var cachePath string
	if traceCache != "" {
		cachePath = filepath.Join(traceCache,
			fmt.Sprintf("%s_seed%d_scale%g.wct", wl, seed, scale))
		if tr, err := trace.ReadBinaryFile(cachePath); err == nil {
			return tr, nil
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "websim: ignoring unreadable trace cache %s: %v\n", cachePath, err)
		}
	}
	cfg, err := workload.ByName(wl, seed)
	if err != nil {
		return nil, err
	}
	cfg.Scale = scale
	tr, _, err := workload.GenerateValidated(cfg)
	if err != nil {
		return nil, err
	}
	if cachePath != "" {
		if werr := trace.WriteBinaryFile(cachePath, tr); werr != nil {
			fmt.Fprintf(os.Stderr, "websim: could not write trace cache %s: %v\n", cachePath, werr)
		}
	}
	return tr, nil
}
