package main

import (
	"os"
	"path/filepath"
	"testing"

	"webcache/internal/trace"
	"webcache/internal/workload"
)

func TestRunAllExperiments(t *testing.T) {
	for _, exp := range []string{"tables", "table4", "1", "2", "2s", "classics", "3", "4", "5", "6"} {
		if err := run(exp, "C", "", 0.10, 0.02, 7, 4, true, true); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", "C", "", 0.1, 0.02, 7, 1, false, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run("1", "ZZ", "", 0.1, 0.02, 7, 1, false, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	cfg := workload.C(3)
	cfg.Scale = 0.01
	raw, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCLF(f, raw, true); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr, err := loadTrace("", path, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("file trace empty after validation")
	}
	// The file path wins over the workload name, and validation is
	// applied: every request is status 200.
	for i := range tr.Requests {
		if tr.Requests[i].Status != 200 {
			t.Fatal("validation not applied to file trace")
		}
	}
	if err := run("1", "", path, 0.1, 1, 1, 2, false, false); err != nil {
		t.Fatalf("run on file trace: %v", err)
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, err := loadTrace("", "/nonexistent/nope.log", 1, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
