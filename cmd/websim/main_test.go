package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webcache/internal/policy"
	"webcache/internal/sim"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

// rc builds the runConfig the quick smoke tests share.
func rc(exp, wl, traceFile string) runConfig {
	return runConfig{
		exp: exp, wl: wl, traceFile: traceFile,
		fraction: 0.10, scale: 0.02, seed: 7, workers: 4,
		series: true, plot: true,
	}
}

func TestRunAllExperiments(t *testing.T) {
	for _, exp := range []string{"tables", "table4", "1", "2", "2s", "classics", "3", "4", "5", "6"} {
		if err := run(io.Discard, rc(exp, "C", "")); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, rc("bogus", "C", "")); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run(io.Discard, rc("1", "ZZ", "")); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	cfg := workload.C(3)
	cfg.Scale = 0.01
	raw, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCLF(f, raw, true); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr, err := loadTrace("", path, "", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("file trace empty after validation")
	}
	// The file path wins over the workload name, and validation is
	// applied: every request is status 200.
	for i := range tr.Requests {
		if tr.Requests[i].Status != 200 {
			t.Fatal("validation not applied to file trace")
		}
	}
	fileRC := rc("1", "", path)
	fileRC.scale, fileRC.seed, fileRC.workers = 1, 1, 2
	if err := run(io.Discard, fileRC); err != nil {
		t.Fatalf("run on file trace: %v", err)
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, err := loadTrace("", "/nonexistent/nope.log", "", 1, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTraceCache checks the binary trace cache: a cold load writes the
// cache file, a warm load reads it back to the identical trace, and a
// corrupt cache falls back to regeneration instead of failing the run.
func TestTraceCache(t *testing.T) {
	dir := t.TempDir()
	cold, err := loadTrace("C", "", dir, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "C_seed3_scale0.01.wct")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cold load did not write the cache: %v", err)
	}
	warm, err := loadTrace("C", "", dir, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Requests) != len(cold.Requests) || warm.Name != cold.Name || warm.Start != cold.Start {
		t.Fatalf("warm load differs: %d reqs %q/%d, want %d reqs %q/%d",
			len(warm.Requests), warm.Name, warm.Start,
			len(cold.Requests), cold.Name, cold.Start)
	}
	for i := range cold.Requests {
		if warm.Requests[i] != cold.Requests[i] {
			t.Fatalf("request %d differs after cache round trip", i)
		}
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace("C", "", dir, 0.01, 3); err != nil {
		t.Fatalf("corrupt cache not ignored: %v", err)
	}
}

// TestGoldenExperiments replays the nine experiments against goldens
// captured from the pre-interning engine, across the engine's ablation
// modes: the interned columnar path must be byte-identical to the
// string path, the structural policy backends byte-identical to the
// heap fallback, and all of them to the recorded output.
func TestGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay is a full nine-experiment run")
	}
	modes := []struct {
		name                   string
		noIntern, noStructural bool
	}{
		{"optimized", false, false},
		{"nointern", true, false},
		{"nostructural", false, true},
	}
	for _, exp := range []string{"1", "2", "2s", "2all", "classics", "3", "4", "5", "6"} {
		golden, err := os.ReadFile(filepath.Join("testdata", "exp"+exp+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes {
			sim.DisableInterning = mode.noIntern
			policy.DisableStructural = mode.noStructural
			var buf bytes.Buffer
			cfg := runConfig{
				exp: exp, wl: "BL", fraction: 0.10, scale: 0.05,
				seed: 42, workers: 1,
			}
			err := run(&buf, cfg)
			sim.DisableInterning = false
			policy.DisableStructural = false
			if err != nil {
				t.Fatalf("exp %s (%s): %v", exp, mode.name, err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("exp %s (%s): output differs from golden", exp, mode.name)
			}
		}
	}
}

// TestGoldenWithObservability replays the nine experiments with the
// observability layer fully on (-metrics-out, -progress and -listen,
// so the event ring and SSE broadcaster ride along): stdout must stay
// byte-identical to the goldens, and the metrics file must be a
// well-formed JSONL stream — header, per-replay records, summary.
func TestGoldenWithObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay is a full nine-experiment run")
	}
	for _, exp := range []string{"1", "2", "2s", "2all", "classics", "3", "4", "5", "6"} {
		golden, err := os.ReadFile(filepath.Join("testdata", "exp"+exp+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		metrics := filepath.Join(t.TempDir(), "metrics.jsonl")
		var buf, progress bytes.Buffer
		cfg := runConfig{
			exp: exp, wl: "BL", fraction: 0.10, scale: 0.05,
			seed: 42, workers: 1,
			metricsOut: metrics, progress: true, progressW: &progress,
			listen: "127.0.0.1:0",
		}
		if err := run(&buf, cfg); err != nil {
			t.Fatalf("exp %s with observability: %v", exp, err)
		}
		if sim.Observer != nil {
			t.Fatal("observer still attached after run")
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Errorf("exp %s: output differs from golden with observability on", exp)
		}
		if !strings.Contains(progress.String(), "websim:") {
			t.Errorf("exp %s: no progress output rendered", exp)
		}

		raw, err := os.ReadFile(metrics)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
		if len(lines) < 3 {
			t.Fatalf("exp %s: metrics stream has %d lines, want header + replays + summary", exp, len(lines))
		}
		var records []map[string]any
		for i, line := range lines {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("exp %s: metrics line %d is not JSON: %v", exp, i, err)
			}
			records = append(records, rec)
		}
		header := records[0]
		if header["record"] != "header" || header["schema"] == "" || header["git_rev"] == "" {
			t.Errorf("exp %s: malformed header record: %v", exp, header)
		}
		if header["exp"] != exp || header["workload"] != "BL" {
			t.Errorf("exp %s: header misattributed: %v", exp, header)
		}
		summary := records[len(records)-1]
		if summary["record"] != "summary" {
			t.Fatalf("exp %s: final record is %v, want summary", exp, summary["record"])
		}
		replays := 0
		for _, rec := range records[1 : len(records)-1] {
			if rec["record"] != "replay" {
				t.Fatalf("exp %s: interior record is %v, want replay", exp, rec["record"])
			}
			if rec["requests"].(float64) <= 0 || rec["policy"] == "" || rec["workload"] == "" {
				t.Errorf("exp %s: implausible replay record: %v", exp, rec)
			}
			replays++
		}
		if got := int(summary["replays"].(float64)); got != replays {
			t.Errorf("exp %s: summary counts %d replays, stream has %d", exp, got, replays)
		}
	}
}

// TestListenServesLiveEndpoints runs an experiment with -listen and
// checks the introspection surface from inside the run: the static
// endpoints answer before the first replay, and the SSE stream carries
// both progress frames and the per-replay snapshots the replays push.
func TestListenServesLiveEndpoints(t *testing.T) {
	frames := make(chan string, 1024)
	cfg := rc("2", "C", "")
	cfg.workers = 1
	cfg.listen = "127.0.0.1:0"
	cfg.onListen = func(addr net.Addr) {
		base := "http://" + addr.String()
		for _, path := range []string{"/healthz", "/metrics", "/trace", "/debug/pprof/"} {
			resp, err := http.Get(base + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s = %d", path, resp.StatusCode)
			}
		}
		resp, err := http.Get(base + "/buildinfo")
		if err != nil {
			t.Fatalf("GET /buildinfo: %v", err)
		}
		info, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(info), `"cmd": "websim"`) {
			t.Errorf("buildinfo does not name websim: %s", info)
		}

		// Subscribe before the replays start; the reader drains until
		// the run's stop() closes the server and with it the stream.
		sse, err := http.Get(base + "/events")
		if err != nil {
			t.Fatalf("GET /events: %v", err)
		}
		go func() {
			defer sse.Body.Close()
			defer close(frames)
			sc := bufio.NewScanner(sse.Body)
			for sc.Scan() {
				if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
					frames <- line
				}
			}
		}()
	}
	if err := run(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
	var replayFrames, progressFrames int
	for f := range frames {
		var rec map[string]any
		if err := json.Unmarshal([]byte(f), &rec); err != nil {
			t.Fatalf("SSE frame is not JSON: %v\n%s", err, f)
		}
		switch {
		case rec["record"] == "replay":
			replayFrames++
			if rec["policy"] == "" || rec["requests"].(float64) <= 0 {
				t.Errorf("implausible replay frame: %v", rec)
			}
		case rec["replays_done"] != nil:
			progressFrames++
		}
	}
	if replayFrames == 0 {
		t.Error("no replay snapshots streamed over SSE")
	}
	if progressFrames == 0 {
		t.Error("no progress frames streamed over SSE")
	}
}
