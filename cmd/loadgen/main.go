// Command loadgen measures the live store's contended hot path: G
// goroutines hammer a prepopulated ObjectStore with a zipf-distributed
// key stream (mostly Gets — the hit path — with a Put mixed in every
// put-every ops), once against the single-mutex Store and once against
// the N-way ShardedStore, and reports ops/sec for each plus the
// sharded/single speedup.
//
// With -out, the result is appended to a trajectory file
// (BENCH_proxy.json at the repo root — same append-only, git_rev'd
// arrangement as BENCH_replay.json) and the whole file is
// schema-checked after the append; -check validates an existing
// trajectory without running anything (the CI smoke uses both).
//
// The recorded gomaxprocs field is how entries stay comparable across
// machines: sharding removes the global serialization point, so the
// speedup tracks available parallelism — near-linear to GOMAXPROCS on
// multi-core hardware, and necessarily ~1× on a single-core box where
// every op serializes anyway.
//
// Usage:
//
//	loadgen                                   # measure and print
//	loadgen -goroutines 8 -shards 16 -out BENCH_proxy.json
//	loadgen -check BENCH_proxy.json           # schema-check only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"webcache/internal/policy"
	"webcache/internal/proxy"
	"webcache/internal/rng"
)

// Result is one measurement in the BENCH_proxy.json trajectory.
type Result struct {
	Benchmark        string  `json:"benchmark"`
	GitRev           string  `json:"git_rev"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	Goroutines       int     `json:"goroutines"`
	Shards           int     `json:"shards"`
	Keys             int     `json:"keys"`
	ZipfS            float64 `json:"zipf_s"`
	ValueBytes       int     `json:"value_bytes"`
	OpsPerGoroutine  int     `json:"ops_per_goroutine"`
	PutEvery         int     `json:"put_every"`
	Policy           string  `json:"policy"`
	Reps             int     `json:"reps"`
	SingleOpsPerSec  float64 `json:"single_mutex_ops_per_sec"`
	ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
	SingleHitRate    float64 `json:"single_mutex_hit_rate"`
	ShardedHitRate   float64 `json:"sharded_hit_rate"`
	Generated        string  `json:"generated"`
}

// config carries the parsed flag set; a struct so tests can drive the
// full harness in-process.
type config struct {
	keys       int
	zipfS      float64
	goroutines int
	shards     int
	ops        int // per goroutine, per timed rep
	valueBytes int
	putEvery   int
	polSpec    string
	reps       int
	seed       uint64
	capacity   int64 // 0 = auto: 2× the working set, so the run measures the hit path
}

func main() {
	var (
		keys       = flag.Int("keys", 4096, "distinct URLs in the key population")
		zipfS      = flag.Float64("zipf", 0.8, "zipf exponent of the key popularity distribution")
		goroutines = flag.Int("goroutines", 8, "concurrent client goroutines")
		shards     = flag.Int("shards", 16, "shard count for the sharded store side")
		ops        = flag.Int("ops", 200000, "operations per goroutine per rep")
		valueBytes = flag.Int("valuebytes", 2048, "cached object body size")
		putEvery   = flag.Int("putevery", 64, "issue a Put every this many ops (rest are Gets)")
		polSpec    = flag.String("policy", "SIZE", "removal policy for both stores")
		reps       = flag.Int("reps", 3, "timed repetitions per store; the fastest is kept")
		seed       = flag.Uint64("seed", 1, "zipf stream seed")
		out        = flag.String("out", "", "append the result to this trajectory file (schema-checked after the append)")
		check      = flag.String("check", "", "schema-check this trajectory file and exit (no measurement)")
	)
	flag.Parse()

	if *check != "" {
		if err := validateTrajectory(*check); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema ok\n", *check)
		return
	}
	cfg := config{
		keys: *keys, zipfS: *zipfS, goroutines: *goroutines, shards: *shards,
		ops: *ops, valueBytes: *valueBytes, putEvery: *putEvery,
		polSpec: *polSpec, reps: *reps, seed: *seed,
	}
	res, err := run(cfg, os.Stdout)
	if err == nil && *out != "" {
		err = appendResult(*out, *res)
		if err == nil {
			err = validateTrajectory(*out)
		}
		if err == nil {
			fmt.Printf("  appended to %s (schema ok)\n", *out)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run executes the full measurement and returns the trajectory entry.
func run(cfg config, w *os.File) (*Result, error) {
	if cfg.reps < 1 {
		cfg.reps = 1
	}
	if cfg.putEvery < 2 {
		cfg.putEvery = 2
	}
	if _, err := policy.Parse(cfg.polSpec, 0); err != nil {
		return nil, err
	}
	capacity := cfg.capacity
	if capacity == 0 {
		// Twice the working set: every key stays resident, so the timed
		// region measures the contended HIT path, not eviction churn.
		capacity = 2 * int64(cfg.keys) * int64(cfg.valueBytes)
	}
	urls := make([]string, cfg.keys)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://loadgen.example.com/doc%d.html", i)
	}
	plans := buildPlans(cfg)

	fmt.Fprintf(w, "loadgen: %d keys (zipf %.2f), %d goroutines × %d ops, put every %d, policy %s, %d reps, GOMAXPROCS %d\n",
		cfg.keys, cfg.zipfS, cfg.goroutines, cfg.ops, cfg.putEvery, cfg.polSpec, cfg.reps, runtime.GOMAXPROCS(0))

	factory := func() policy.Policy {
		p, _ := policy.Parse(cfg.polSpec, 0)
		return p
	}
	single := proxy.NewStore(capacity, factory())
	sharded := proxy.NewShardedStore(capacity, cfg.shards, factory)
	stores := []struct {
		name  string
		store proxy.ObjectStore
		best  time.Duration
	}{
		{name: "single-mutex", store: single, best: 1<<63 - 1},
		{name: fmt.Sprintf("sharded-%d", cfg.shards), store: sharded, best: 1<<63 - 1},
	}
	for i := range stores {
		prepopulate(stores[i].store, urls, cfg.valueBytes)
	}

	// Interleave the reps so machine-load drift lands on both sides of
	// the ratio instead of skewing one (the benchreplay arrangement).
	for r := 0; r < cfg.reps; r++ {
		for i := range stores {
			d := drive(stores[i].store, urls, plans, cfg.valueBytes)
			if d < stores[i].best {
				stores[i].best = d
			}
		}
	}

	totalOps := float64(cfg.goroutines * cfg.ops)
	singleOps := totalOps / stores[0].best.Seconds()
	shardedOps := totalOps / stores[1].best.Seconds()
	singleSt, shardedSt := single.Stats(), sharded.Stats()
	res := &Result{
		Benchmark:        "proxy-contended-hotpath",
		GitRev:           gitRev(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Goroutines:       cfg.goroutines,
		Shards:           cfg.shards,
		Keys:             cfg.keys,
		ZipfS:            cfg.zipfS,
		ValueBytes:       cfg.valueBytes,
		OpsPerGoroutine:  cfg.ops,
		PutEvery:         cfg.putEvery,
		Policy:           cfg.polSpec,
		Reps:             cfg.reps,
		SingleOpsPerSec:  singleOps,
		ShardedOpsPerSec: shardedOps,
		Speedup:          shardedOps / singleOps,
		SingleHitRate:    hitRate(singleSt),
		ShardedHitRate:   hitRate(shardedSt),
		Generated:        time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Fprintf(w, "  single-mutex: %12.0f ops/sec  (hit rate %5.1f%%)\n", singleOps, 100*res.SingleHitRate)
	fmt.Fprintf(w, "  sharded-%-4d: %12.0f ops/sec  (hit rate %5.1f%%)\n", cfg.shards, shardedOps, 100*res.ShardedHitRate)
	fmt.Fprintf(w, "  speedup: %.2f× at %d goroutines on GOMAXPROCS %d\n", res.Speedup, cfg.goroutines, res.GoMaxProcs)
	return res, nil
}

func hitRate(st proxy.StoreStats) float64 {
	if st.Gets == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Gets)
}

// plan is one goroutine's pre-generated op stream: the key index of
// every op, and which ops are Puts. Generating the zipf draws outside
// the timed region keeps the measurement about the store, not the
// sampler, and makes the stream identical for both store sides.
type plan struct {
	idx   []int32
	isPut []bool
}

func buildPlans(cfg config) []plan {
	plans := make([]plan, cfg.goroutines)
	for g := range plans {
		r := rng.New(cfg.seed + uint64(g)*0x9e3779b97f4a7c15)
		z, err := rng.NewZipf(r, int64(cfg.keys), cfg.zipfS)
		if err != nil {
			panic(err) // flag-validated: keys >= 1, zipf > 0
		}
		p := plan{idx: make([]int32, cfg.ops), isPut: make([]bool, cfg.ops)}
		for i := 0; i < cfg.ops; i++ {
			p.idx[i] = int32(z.Rank() - 1)
			p.isPut[i] = i%cfg.putEvery == cfg.putEvery-1
		}
		plans[g] = p
	}
	return plans
}

func prepopulate(s proxy.ObjectStore, urls []string, valueBytes int) {
	body := make([]byte, valueBytes)
	now := time.Now()
	for _, url := range urls {
		s.Put(url, &proxy.Object{Body: body, ContentType: "text/html", StoredAt: now})
	}
}

// drive runs every plan against s concurrently and returns the wall
// time from the moment all goroutines are released to the last one
// finishing.
func drive(s proxy.ObjectStore, urls []string, plans []plan, valueBytes int) time.Duration {
	body := make([]byte, valueBytes)
	storedAt := time.Now()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := range plans {
		wg.Add(1)
		go func(p plan) {
			defer wg.Done()
			<-start
			for i, idx := range p.idx {
				url := urls[idx]
				if p.isPut[i] {
					s.Put(url, &proxy.Object{Body: body, ContentType: "text/html", StoredAt: storedAt})
				} else {
					s.Get(url)
				}
			}
		}(plans[g])
	}
	runtime.GC() // settle the previous rep's garbage outside the timed region
	begin := time.Now()
	close(start)
	wg.Wait()
	return time.Since(begin)
}

// gitRev identifies the measured revision ("-dirty" when the tree has
// uncommitted changes), "unknown" outside a work tree.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		rev += "-dirty"
	}
	return rev
}

// readTrajectory parses a trajectory file (a JSON array of Results).
func readTrajectory(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return results, nil
}

// appendResult adds res to the trajectory at path, creating it if
// absent — entries are only ever appended, never rewritten, so the
// file reads as the store's throughput history PR over PR.
func appendResult(path string, res Result) error {
	var results []Result
	if _, err := os.Stat(path); err == nil {
		results, err = readTrajectory(path)
		if err != nil {
			return err
		}
	}
	results = append(results, res)
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// validateTrajectory schema-checks every entry of the trajectory: the
// fields CI and later sessions rely on must be present and sane.
func validateTrajectory(path string) error {
	results, err := readTrajectory(path)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("%s holds no entries", path)
	}
	for i, r := range results {
		fail := func(field string) error {
			return fmt.Errorf("%s entry %d: bad or missing %s", path, i, field)
		}
		switch {
		case r.Benchmark == "":
			return fail("benchmark")
		case r.GitRev == "":
			return fail("git_rev")
		case r.GoMaxProcs < 1:
			return fail("gomaxprocs")
		case r.Goroutines < 1:
			return fail("goroutines")
		case r.Shards < 1:
			return fail("shards")
		case r.Keys < 1:
			return fail("keys")
		case r.OpsPerGoroutine < 1:
			return fail("ops_per_goroutine")
		case r.SingleOpsPerSec <= 0:
			return fail("single_mutex_ops_per_sec")
		case r.ShardedOpsPerSec <= 0:
			return fail("sharded_ops_per_sec")
		case r.Speedup <= 0:
			return fail("speedup")
		}
		if _, err := time.Parse(time.RFC3339, r.Generated); err != nil {
			return fail("generated")
		}
	}
	return nil
}
