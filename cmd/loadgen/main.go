// Command loadgen measures the live store's contended hot path: G
// goroutines hammer a prepopulated ObjectStore with a zipf-distributed
// key stream (mostly Gets — the hit path — with a Put mixed in every
// put-every ops), against the single-mutex Store, the N-way
// ShardedStore, and (with -touch-buffer > 0) the sharded store with the
// buffered read-lock-only hit path plus its background Maintainer, and
// reports ops/sec for each side, the sharded/single speedup, the
// buffered/sharded speedup, and sampled Get latency p50/p99.
//
// With -shadow N > 0 a fourth side repeats the baseline store (buffered
// when -touch-buffer > 0, plain sharded otherwise) with a
// proxy.ShadowFleet of N ghost caches attached: every Get additionally
// performs the fleet's single non-blocking enqueue, exactly the cost
// the serving proxy pays per request when shadowing is on. The entry
// records the shadowed side's throughput, Get quantiles, the p50
// overhead ratio vs the baseline, and the fleet's drop count.
//
// With -trace-sample N > 0 a fifth side repeats the baseline store with
// an obs.Tracer attached: every op pays the tracer's Begin/End pair and
// the sampled ops (1 in N) additionally record their per-phase span
// timeline through the TracedStore path — exactly the cost the serving
// proxy pays per request with request tracing enabled. The entry
// records the traced side's throughput, Get quantiles, and the p50
// overhead ratio vs the baseline (trace_overhead).
//
// With -out, the result is appended to a trajectory file
// (BENCH_proxy.json at the repo root — same append-only, git_rev'd
// arrangement as BENCH_replay.json) and the whole file is
// schema-checked after the append; -check validates an existing
// trajectory without running anything (the CI smoke uses both).
//
// The recorded gomaxprocs field is how entries stay comparable across
// machines: sharding removes the global serialization point and the
// touch buffer removes the within-shard one, so both speedups track
// available parallelism — visible on multi-core hardware, necessarily
// ~1× on a single-core box where every op serializes anyway.
//
// Usage:
//
//	loadgen                                   # measure and print
//	loadgen -goroutines 8 -shards 16 -out BENCH_proxy.json
//	loadgen -preset read-mostly               # 99% GETs: the buffered hit path's home turf
//	loadgen -preset read-mostly -shadow 3     # price the ghost-cache enqueue on the hit path
//	loadgen -check BENCH_proxy.json           # schema-check only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"webcache/internal/obs"
	"webcache/internal/policy"
	"webcache/internal/proxy"
	"webcache/internal/rng"
)

// sampleEvery thins the Get-latency measurement: one timed Get per this
// many, so the clock calls cost ~1/16th of an op each and the histogram
// still sees tens of thousands of samples per rep.
const sampleEvery = 16

// Result is one measurement in the BENCH_proxy.json trajectory. The
// buffered-side and latency fields are omitempty: entries from before
// the buffered hit path existed (or runs with -touch-buffer 0) simply
// lack them, and the schema checker only validates them when present.
type Result struct {
	Benchmark        string  `json:"benchmark"`
	GitRev           string  `json:"git_rev"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	Goroutines       int     `json:"goroutines"`
	Shards           int     `json:"shards"`
	Keys             int     `json:"keys"`
	ZipfS            float64 `json:"zipf_s"`
	ValueBytes       int     `json:"value_bytes"`
	OpsPerGoroutine  int     `json:"ops_per_goroutine"`
	PutEvery         int     `json:"put_every"`
	Policy           string  `json:"policy"`
	Reps             int     `json:"reps"`
	SingleOpsPerSec  float64 `json:"single_mutex_ops_per_sec"`
	ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
	Speedup          float64 `json:"speedup"`
	SingleHitRate    float64 `json:"single_mutex_hit_rate"`
	ShardedHitRate   float64 `json:"sharded_hit_rate"`
	Generated        string  `json:"generated"`

	Preset               string  `json:"preset,omitempty"`
	TouchBuffer          int     `json:"touch_buffer,omitempty"`
	BufferedOpsPerSec    float64 `json:"buffered_ops_per_sec,omitempty"`
	BufferedSpeedup      float64 `json:"buffered_speedup,omitempty"` // buffered sharded vs locked sharded
	BufferedHitRate      float64 `json:"buffered_hit_rate,omitempty"`
	BufferedTouchDropped int64   `json:"buffered_touch_dropped,omitempty"`
	SingleGetP50Ns       int64   `json:"single_get_p50_ns,omitempty"`
	SingleGetP99Ns       int64   `json:"single_get_p99_ns,omitempty"`
	ShardedGetP50Ns      int64   `json:"sharded_get_p50_ns,omitempty"`
	ShardedGetP99Ns      int64   `json:"sharded_get_p99_ns,omitempty"`
	BufferedGetP50Ns     int64   `json:"buffered_get_p50_ns,omitempty"`
	BufferedGetP99Ns     int64   `json:"buffered_get_p99_ns,omitempty"`

	// The shadowed side (-shadow N > 0): the baseline store with a
	// ShadowFleet's enqueue on every Get. ShadowOverhead is the shadowed
	// p50 over the baseline p50 (1.0 = free; the acceptance target is
	// < 1.10 with three shadows on read-mostly).
	ShadowPolicies  string  `json:"shadow_policies,omitempty"`
	ShadowOpsPerSec float64 `json:"shadow_ops_per_sec,omitempty"`
	ShadowOverhead  float64 `json:"shadow_overhead,omitempty"`
	ShadowGetP50Ns  int64   `json:"shadow_get_p50_ns,omitempty"`
	ShadowGetP99Ns  int64   `json:"shadow_get_p99_ns,omitempty"`
	ShadowDrops     int64   `json:"shadow_drops,omitempty"`

	// The traced side (-trace-sample N > 0): the baseline store driven
	// through the request tracer — Begin/End per op, span records on the
	// sampled 1-in-N ops. TraceOverhead is the traced p50 over the
	// baseline p50 (1.0 = free).
	TraceSample     int     `json:"trace_sample,omitempty"`
	TracedOpsPerSec float64 `json:"traced_ops_per_sec,omitempty"`
	TraceOverhead   float64 `json:"trace_overhead,omitempty"`
	TracedGetP50Ns  int64   `json:"traced_get_p50_ns,omitempty"`
	TracedGetP99Ns  int64   `json:"traced_get_p99_ns,omitempty"`
}

// shadowCandidates is the fixed roster -shadow N draws from: the first
// N become the ghost-cache fleet. A fixed ordered list keeps entries
// with the same N comparable across runs.
var shadowCandidates = []string{"LRU", "SIZE", "LFU", "SIZE/NREF", "ATIME/SIZE"}

// config carries the parsed flag set; a struct so tests can drive the
// full harness in-process.
type config struct {
	keys        int
	zipfS       float64
	goroutines  int
	shards      int
	ops         int // per goroutine, per timed rep
	valueBytes  int
	putEvery    int
	polSpec     string
	reps        int
	seed        uint64
	capacity    int64  // 0 = auto: 2× the working set, so the run measures the hit path
	preset      string // named knob bundle; see applyPreset
	touchBuffer int    // >0 adds the buffered sharded side with this many ring slots per shard
	shadow      int    // >0 adds a baseline-store side shadowed by this many ghost caches
	traceSample int    // >0 adds a baseline-store side tracing every nth op
}

// applyPreset resolves a named knob bundle. "read-mostly" is the
// buffered hit path's home turf: 99% GETs (one Put per 100 ops), the
// workload the ≥1.5× buffered-vs-locked acceptance target is stated
// for.
func applyPreset(cfg config) (config, error) {
	switch cfg.preset {
	case "":
	case "read-mostly":
		cfg.putEvery = 100
	default:
		return cfg, fmt.Errorf("unknown preset %q (supported: read-mostly)", cfg.preset)
	}
	return cfg, nil
}

func main() {
	var (
		keys       = flag.Int("keys", 4096, "distinct URLs in the key population")
		zipfS      = flag.Float64("zipf", 0.8, "zipf exponent of the key popularity distribution")
		goroutines = flag.Int("goroutines", 8, "concurrent client goroutines")
		shards     = flag.Int("shards", 16, "shard count for the sharded store side")
		ops        = flag.Int("ops", 200000, "operations per goroutine per rep")
		valueBytes = flag.Int("valuebytes", 2048, "cached object body size")
		putEvery   = flag.Int("putevery", 64, "issue a Put every this many ops (rest are Gets)")
		polSpec    = flag.String("policy", "SIZE", "removal policy for both stores")
		reps       = flag.Int("reps", 3, "timed repetitions per store; the fastest is kept")
		seed       = flag.Uint64("seed", 1, "zipf stream seed")
		preset     = flag.String("preset", "", "named knob bundle (read-mostly: 99% GETs)")
		touchBuf   = flag.Int("touch-buffer", 1024, "ring slots per shard for the buffered sharded side (0 = skip that side)")
		shadow     = flag.Int("shadow", 0, "ghost-cache policies shadowing a fourth baseline side (0 = skip that side)")
		traceN     = flag.Int("trace-sample", 0, "trace every nth op on a fifth baseline side with the request tracer attached (0 = skip that side)")
		out        = flag.String("out", "", "append the result to this trajectory file (schema-checked after the append)")
		check      = flag.String("check", "", "schema-check this trajectory file and exit (no measurement)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	if *check != "" {
		if err := validateTrajectory(*check); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema ok\n", *check)
		return
	}
	cfg := config{
		keys: *keys, zipfS: *zipfS, goroutines: *goroutines, shards: *shards,
		ops: *ops, valueBytes: *valueBytes, putEvery: *putEvery,
		polSpec: *polSpec, reps: *reps, seed: *seed,
		preset: *preset, touchBuffer: *touchBuf, shadow: *shadow, traceSample: *traceN,
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	res, err := run(cfg, os.Stdout)
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", merr)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", merr)
			os.Exit(1)
		}
		f.Close()
	}
	if err == nil && *out != "" {
		err = appendResult(*out, *res)
		if err == nil {
			err = validateTrajectory(*out)
		}
		if err == nil {
			fmt.Printf("  appended to %s (schema ok)\n", *out)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run executes the full measurement and returns the trajectory entry.
func run(cfg config, w *os.File) (*Result, error) {
	cfg, err := applyPreset(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.reps < 1 {
		cfg.reps = 1
	}
	if cfg.putEvery < 2 {
		cfg.putEvery = 2
	}
	if _, err := policy.Parse(cfg.polSpec, 0); err != nil {
		return nil, err
	}
	capacity := cfg.capacity
	if capacity == 0 {
		// Twice the working set: every key stays resident, so the timed
		// region measures the contended HIT path, not eviction churn.
		capacity = 2 * int64(cfg.keys) * int64(cfg.valueBytes)
	}
	urls := make([]string, cfg.keys)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://loadgen.example.com/doc%d.html", i)
	}
	plans := buildPlans(cfg)

	presetNote := ""
	if cfg.preset != "" {
		presetNote = fmt.Sprintf(" [%s]", cfg.preset)
	}
	fmt.Fprintf(w, "loadgen%s: %d keys (zipf %.2f), %d goroutines × %d ops, put every %d, policy %s, %d reps, GOMAXPROCS %d\n",
		presetNote, cfg.keys, cfg.zipfS, cfg.goroutines, cfg.ops, cfg.putEvery, cfg.polSpec, cfg.reps, runtime.GOMAXPROCS(0))

	factory := func() policy.Policy {
		p, _ := policy.Parse(cfg.polSpec, 0)
		return p
	}
	single := proxy.NewStore(capacity, factory())
	sharded := proxy.NewShardedStore(capacity, cfg.shards, factory)
	// Get latencies are sampled (every sampleEvery-th Get) into one
	// power-of-two histogram per side — identical sampling overhead on
	// every side, so the ops/sec ratios stay honest.
	hreg := obs.NewRegistry()
	type side struct {
		name  string
		store proxy.ObjectStore
		hist  *obs.Histogram
		best  time.Duration
	}
	sides := []side{
		{name: "single-mutex", store: single, hist: hreg.Histogram("get_ns.single"), best: 1<<63 - 1},
		{name: fmt.Sprintf("sharded-%d", cfg.shards), store: sharded, hist: hreg.Histogram("get_ns.sharded"), best: 1<<63 - 1},
	}
	var buffered *proxy.ShardedStore
	if cfg.touchBuffer > 0 {
		// The third side: same sharded layout, but with the read-lock-only
		// buffered hit path and its background Maintainer live during the
		// timed region — drains and quota rebalancing run exactly as they
		// would in a serving proxy.
		buffered = proxy.NewShardedStore(capacity, cfg.shards, factory)
		buffered.SetTouchBuffer(cfg.touchBuffer)
		sides = append(sides, side{
			name:  fmt.Sprintf("buffered-%d", cfg.shards),
			store: buffered, hist: hreg.Histogram("get_ns.buffered"), best: 1<<63 - 1,
		})
	}
	var (
		shadowStore *proxy.ShardedStore // the shadowed side's underlying store
		fleet       *proxy.ShadowFleet
		shadowSpecs []string
		shadowIdx   = -1
	)
	if cfg.shadow > 0 {
		// The fourth side: the baseline store again (buffered when that
		// side runs, plain sharded otherwise), with a ghost-cache fleet's
		// non-blocking enqueue on every Get — the exact per-request cost a
		// serving proxy pays with -shadow on. The fleet's drain worker runs
		// concurrently throughout, as it would in production.
		if cfg.shadow > len(shadowCandidates) {
			return nil, fmt.Errorf("-shadow %d exceeds the candidate roster (%d: %s)",
				cfg.shadow, len(shadowCandidates), strings.Join(shadowCandidates, ","))
		}
		shadowSpecs = shadowCandidates[:cfg.shadow]
		shadowStore = proxy.NewShardedStore(capacity, cfg.shards, factory)
		if cfg.touchBuffer > 0 {
			shadowStore.SetTouchBuffer(cfg.touchBuffer)
		}
		var err error
		fleet, err = proxy.NewShadowFleet(proxy.ShadowOptions{
			Policies: shadowSpecs,
			Capacity: capacity,
			Seed:     cfg.seed,
		})
		if err != nil {
			return nil, err
		}
		defer fleet.Close()
		shadowIdx = len(sides)
		sides = append(sides, side{
			name: fmt.Sprintf("shadowed-%d", cfg.shards),
			store: &shadowedStore{
				ObjectStore: shadowStore, fleet: fleet, size: int64(cfg.valueBytes),
			},
			hist: hreg.Histogram("get_ns.shadow"), best: 1<<63 - 1,
		})
	}
	var (
		tracedBase *proxy.ShardedStore // the traced side's underlying store
		tracer     *obs.Tracer
		tracedIdx  = -1
	)
	if cfg.traceSample > 0 {
		// The fifth side: the baseline store again, every op driven
		// through the request tracer — Begin/End bracketing each op, the
		// sampled 1-in-N ops recording phase spans via the TracedStore
		// path — the exact per-request cost the serving proxy pays with
		// -trace-sample on.
		tracedBase = proxy.NewShardedStore(capacity, cfg.shards, factory)
		if cfg.touchBuffer > 0 {
			tracedBase.SetTouchBuffer(cfg.touchBuffer)
		}
		tracer = obs.NewTracer(obs.TracerOptions{SampleEvery: cfg.traceSample})
		tracedIdx = len(sides)
		sides = append(sides, side{
			name: fmt.Sprintf("traced-%d", cfg.shards),
			store: &tracedStore{
				ObjectStore: tracedBase, traced: tracedBase, tracer: tracer,
			},
			hist: hreg.Histogram("get_ns.traced"), best: 1<<63 - 1,
		})
	}
	for i := range sides {
		// The key population is the expected resident set (capacity is
		// sized to hold it), so hand it to Reserve: maps and policy
		// structures allocate once, before the timed region.
		sides[i].store.Reserve(cfg.keys)
		prepopulate(sides[i].store, urls, cfg.valueBytes)
	}
	var maint *proxy.Maintainer
	if buffered != nil {
		maint = proxy.StartMaintenance(buffered, proxy.MaintOptions{})
		defer maint.Close()
	}
	if shadowStore != nil && cfg.touchBuffer > 0 {
		shadowMaint := proxy.StartMaintenance(shadowStore, proxy.MaintOptions{})
		defer shadowMaint.Close()
	}
	if tracedBase != nil && cfg.touchBuffer > 0 {
		tracedMaint := proxy.StartMaintenance(tracedBase, proxy.MaintOptions{})
		defer tracedMaint.Close()
	}

	// Interleave the reps so machine-load drift lands on all sides of
	// the ratios instead of skewing one (the benchreplay arrangement).
	for r := 0; r < cfg.reps; r++ {
		for i := range sides {
			d := drive(sides[i].store, urls, plans, cfg.valueBytes, sides[i].hist)
			if d < sides[i].best {
				sides[i].best = d
			}
		}
	}

	totalOps := float64(cfg.goroutines * cfg.ops)
	singleOps := totalOps / sides[0].best.Seconds()
	shardedOps := totalOps / sides[1].best.Seconds()
	singleSt, shardedSt := single.Stats(), sharded.Stats()
	res := &Result{
		Benchmark:        "proxy-contended-hotpath",
		GitRev:           gitRev(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Goroutines:       cfg.goroutines,
		Shards:           cfg.shards,
		Keys:             cfg.keys,
		ZipfS:            cfg.zipfS,
		ValueBytes:       cfg.valueBytes,
		OpsPerGoroutine:  cfg.ops,
		PutEvery:         cfg.putEvery,
		Policy:           cfg.polSpec,
		Reps:             cfg.reps,
		SingleOpsPerSec:  singleOps,
		ShardedOpsPerSec: shardedOps,
		Speedup:          shardedOps / singleOps,
		SingleHitRate:    hitRate(singleSt),
		ShardedHitRate:   hitRate(shardedSt),
		Generated:        time.Now().UTC().Format(time.RFC3339),

		Preset:          cfg.preset,
		SingleGetP50Ns:  sides[0].hist.Quantile(0.50),
		SingleGetP99Ns:  sides[0].hist.Quantile(0.99),
		ShardedGetP50Ns: sides[1].hist.Quantile(0.50),
		ShardedGetP99Ns: sides[1].hist.Quantile(0.99),
	}
	fmt.Fprintf(w, "  single-mutex: %12.0f ops/sec  (hit rate %5.1f%%, Get p50 %s p99 %s)\n",
		singleOps, 100*res.SingleHitRate, time.Duration(res.SingleGetP50Ns), time.Duration(res.SingleGetP99Ns))
	fmt.Fprintf(w, "  sharded-%-4d: %12.0f ops/sec  (hit rate %5.1f%%, Get p50 %s p99 %s)\n",
		cfg.shards, shardedOps, 100*res.ShardedHitRate, time.Duration(res.ShardedGetP50Ns), time.Duration(res.ShardedGetP99Ns))
	if buffered != nil {
		maint.Close() // final flush, so the drop accounting below is complete
		bufferedOps := totalOps / sides[2].best.Seconds()
		bufSt := buffered.Stats()
		res.TouchBuffer = cfg.touchBuffer
		res.BufferedOpsPerSec = bufferedOps
		res.BufferedSpeedup = bufferedOps / shardedOps
		res.BufferedHitRate = hitRate(bufSt)
		res.BufferedTouchDropped = bufSt.TouchDropped
		res.BufferedGetP50Ns = sides[2].hist.Quantile(0.50)
		res.BufferedGetP99Ns = sides[2].hist.Quantile(0.99)
		fmt.Fprintf(w, "  buffered-%-3d: %12.0f ops/sec  (hit rate %5.1f%%, Get p50 %s p99 %s, %d touches dropped)\n",
			cfg.shards, bufferedOps, 100*res.BufferedHitRate,
			time.Duration(res.BufferedGetP50Ns), time.Duration(res.BufferedGetP99Ns), bufSt.TouchDropped)
	}
	if fleet != nil {
		// Close drains the ring, so the drop count below is final (Close
		// is idempotent; the deferred call becomes a no-op).
		fleet.Close()
		report := fleet.Report()
		baseName, baseOps, baseP50 := sides[1].name, shardedOps, res.ShardedGetP50Ns
		if buffered != nil {
			baseName, baseOps, baseP50 = sides[2].name, res.BufferedOpsPerSec, res.BufferedGetP50Ns
		}
		shadowOps := totalOps / sides[shadowIdx].best.Seconds()
		res.ShadowPolicies = strings.Join(shadowSpecs, ",")
		res.ShadowOpsPerSec = shadowOps
		res.ShadowGetP50Ns = sides[shadowIdx].hist.Quantile(0.50)
		res.ShadowGetP99Ns = sides[shadowIdx].hist.Quantile(0.99)
		res.ShadowDrops = report.Dropped
		if baseP50 > 0 {
			res.ShadowOverhead = float64(res.ShadowGetP50Ns) / float64(baseP50)
		}
		fmt.Fprintf(w, "  shadowed-%-3d: %12.0f ops/sec  (hit rate %5.1f%%, Get p50 %s p99 %s, %d ghost events dropped)\n",
			cfg.shards, shadowOps, 100*hitRate(shadowStore.Stats()),
			time.Duration(res.ShadowGetP50Ns), time.Duration(res.ShadowGetP99Ns), report.Dropped)
		fmt.Fprintf(w, "  shadow overhead: Get p50 %+.1f%% vs %s with %d ghost caches (%s), throughput %.2f×\n",
			100*(res.ShadowOverhead-1), baseName, cfg.shadow, res.ShadowPolicies, shadowOps/baseOps)
	}
	if tracer != nil {
		baseName, baseOps, baseP50 := sides[1].name, shardedOps, res.ShardedGetP50Ns
		if buffered != nil {
			baseName, baseOps, baseP50 = sides[2].name, res.BufferedOpsPerSec, res.BufferedGetP50Ns
		}
		tracedOps := totalOps / sides[tracedIdx].best.Seconds()
		res.TraceSample = cfg.traceSample
		res.TracedOpsPerSec = tracedOps
		res.TracedGetP50Ns = sides[tracedIdx].hist.Quantile(0.50)
		res.TracedGetP99Ns = sides[tracedIdx].hist.Quantile(0.99)
		if baseP50 > 0 {
			res.TraceOverhead = float64(res.TracedGetP50Ns) / float64(baseP50)
		}
		st := tracer.Stats()
		fmt.Fprintf(w, "  traced-%-5d: %12.0f ops/sec  (hit rate %5.1f%%, Get p50 %s p99 %s, %d sampled %d kept)\n",
			cfg.shards, tracedOps, 100*hitRate(tracedBase.Stats()),
			time.Duration(res.TracedGetP50Ns), time.Duration(res.TracedGetP99Ns), st.Sampled, st.Kept)
		fmt.Fprintf(w, "  trace overhead: Get p50 %+.1f%% vs %s sampling 1 in %d, throughput %.2f×\n",
			100*(res.TraceOverhead-1), baseName, cfg.traceSample, tracedOps/baseOps)
	}
	fmt.Fprintf(w, "  speedup: sharded %.2f× vs single", res.Speedup)
	if buffered != nil {
		fmt.Fprintf(w, ", buffered %.2f× vs sharded", res.BufferedSpeedup)
	}
	fmt.Fprintf(w, " at %d goroutines on GOMAXPROCS %d\n", cfg.goroutines, res.GoMaxProcs)
	return res, nil
}

// shadowedStore is the shadowed side's ObjectStore: the baseline store
// plus the ShadowFleet's lossy enqueue on every Get — the one extra
// instruction stream the serving proxy's hot path runs when -shadow is
// on. Puts pass through untouched (the fleet only observes requests).
type shadowedStore struct {
	proxy.ObjectStore
	fleet *proxy.ShadowFleet
	size  int64
}

func (s *shadowedStore) Get(url string) (*proxy.Object, bool) {
	obj, ok := s.ObjectStore.Get(url)
	s.fleet.Observe(url, s.size, ok)
	return obj, ok
}

// tracedStore is the traced side's ObjectStore: the baseline store
// driven through the request tracer — every op calls Begin/End (the
// unsampled cost is one atomic add) and the sampled 1-in-N ops record
// their phase spans via the TracedStore methods, the same instruction
// stream the serving proxy's hot path runs with -trace-sample on.
type tracedStore struct {
	proxy.ObjectStore
	traced proxy.TracedStore
	tracer *obs.Tracer
}

func (s *tracedStore) Get(url string) (*proxy.Object, bool) {
	rt := s.tracer.Begin()
	obj, ok := s.traced.GetTraced(url, rt)
	if rt != nil {
		rt.SetURL(url)
		if ok {
			rt.SetOutcome("HIT", 200, int64(len(obj.Body)))
		} else {
			rt.SetOutcome("MISS", 0, 0)
		}
		s.tracer.End(rt)
	}
	return obj, ok
}

func (s *tracedStore) Put(url string, obj *proxy.Object) bool {
	rt := s.tracer.Begin()
	stored := s.traced.PutTraced(url, obj, rt)
	if rt != nil {
		rt.SetURL(url)
		rt.SetOutcome("PUT", 0, int64(len(obj.Body)))
		s.tracer.End(rt)
	}
	return stored
}

func hitRate(st proxy.StoreStats) float64 {
	if st.Gets == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Gets)
}

// plan is one goroutine's pre-generated op stream: the key index of
// every op, and which ops are Puts. Generating the zipf draws outside
// the timed region keeps the measurement about the store, not the
// sampler, and makes the stream identical for both store sides.
type plan struct {
	idx   []int32
	isPut []bool
}

func buildPlans(cfg config) []plan {
	plans := make([]plan, cfg.goroutines)
	for g := range plans {
		r := rng.New(cfg.seed + uint64(g)*0x9e3779b97f4a7c15)
		z, err := rng.NewZipf(r, int64(cfg.keys), cfg.zipfS)
		if err != nil {
			panic(err) // flag-validated: keys >= 1, zipf > 0
		}
		p := plan{idx: make([]int32, cfg.ops), isPut: make([]bool, cfg.ops)}
		for i := 0; i < cfg.ops; i++ {
			p.idx[i] = int32(z.Rank() - 1)
			p.isPut[i] = i%cfg.putEvery == cfg.putEvery-1
		}
		plans[g] = p
	}
	return plans
}

func prepopulate(s proxy.ObjectStore, urls []string, valueBytes int) {
	body := make([]byte, valueBytes)
	now := time.Now()
	for _, url := range urls {
		s.Put(url, &proxy.Object{Body: body, ContentType: "text/html", StoredAt: now})
	}
}

// drive runs every plan against s concurrently and returns the wall
// time from the moment all goroutines are released to the last one
// finishing. Every sampleEvery-th Get is individually timed into hist
// (obs.Histogram is atomic, so concurrent observes are safe).
func drive(s proxy.ObjectStore, urls []string, plans []plan, valueBytes int, hist *obs.Histogram) time.Duration {
	body := make([]byte, valueBytes)
	storedAt := time.Now()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := range plans {
		wg.Add(1)
		go func(p plan) {
			defer wg.Done()
			<-start
			for i, idx := range p.idx {
				url := urls[idx]
				if p.isPut[i] {
					s.Put(url, &proxy.Object{Body: body, ContentType: "text/html", StoredAt: storedAt})
				} else if i%sampleEvery == 0 {
					t0 := time.Now()
					s.Get(url)
					hist.Observe(time.Since(t0).Nanoseconds())
				} else {
					s.Get(url)
				}
			}
		}(plans[g])
	}
	runtime.GC() // settle the previous rep's garbage outside the timed region
	begin := time.Now()
	close(start)
	wg.Wait()
	return time.Since(begin)
}

// gitRev identifies the measured revision ("-dirty" when the tree has
// uncommitted changes), "unknown" outside a work tree.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		rev += "-dirty"
	}
	return rev
}

// readTrajectory parses a trajectory file (a JSON array of Results).
func readTrajectory(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return results, nil
}

// appendResult adds res to the trajectory at path, creating it if
// absent — entries are only ever appended, never rewritten, so the
// file reads as the store's throughput history PR over PR.
func appendResult(path string, res Result) error {
	var results []Result
	if _, err := os.Stat(path); err == nil {
		results, err = readTrajectory(path)
		if err != nil {
			return err
		}
	}
	results = append(results, res)
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// validateTrajectory schema-checks every entry of the trajectory: the
// fields CI and later sessions rely on must be present and sane.
func validateTrajectory(path string) error {
	results, err := readTrajectory(path)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("%s holds no entries", path)
	}
	for i, r := range results {
		fail := func(field string) error {
			return fmt.Errorf("%s entry %d: bad or missing %s", path, i, field)
		}
		switch {
		case r.Benchmark == "":
			return fail("benchmark")
		case r.GitRev == "":
			return fail("git_rev")
		case r.GoMaxProcs < 1:
			return fail("gomaxprocs")
		case r.Goroutines < 1:
			return fail("goroutines")
		case r.Shards < 1:
			return fail("shards")
		case r.Keys < 1:
			return fail("keys")
		case r.OpsPerGoroutine < 1:
			return fail("ops_per_goroutine")
		case r.SingleOpsPerSec <= 0:
			return fail("single_mutex_ops_per_sec")
		case r.ShardedOpsPerSec <= 0:
			return fail("sharded_ops_per_sec")
		case r.Speedup <= 0:
			return fail("speedup")
		}
		if _, err := time.Parse(time.RFC3339, r.Generated); err != nil {
			return fail("generated")
		}
		// Buffered-side fields travel together: an entry measured with a
		// touch buffer must carry its throughput and speedup. Entries from
		// before the buffered path (all fields absent) stay valid.
		if r.TouchBuffer > 0 || r.BufferedOpsPerSec != 0 || r.BufferedSpeedup != 0 {
			switch {
			case r.TouchBuffer < 1:
				return fail("touch_buffer")
			case r.BufferedOpsPerSec <= 0:
				return fail("buffered_ops_per_sec")
			case r.BufferedSpeedup <= 0:
				return fail("buffered_speedup")
			case r.BufferedTouchDropped < 0:
				return fail("buffered_touch_dropped")
			}
		}
		// Shadow-side fields travel together: an entry measured with a
		// ghost-cache fleet must carry the policy list, its throughput,
		// and the overhead ratio. Entries without the side stay valid.
		if r.ShadowPolicies != "" || r.ShadowOpsPerSec != 0 || r.ShadowOverhead != 0 ||
			r.ShadowGetP50Ns != 0 || r.ShadowGetP99Ns != 0 || r.ShadowDrops != 0 {
			switch {
			case r.ShadowPolicies == "":
				return fail("shadow_policies")
			case r.ShadowOpsPerSec <= 0:
				return fail("shadow_ops_per_sec")
			case r.ShadowOverhead <= 0:
				return fail("shadow_overhead")
			case r.ShadowDrops < 0:
				return fail("shadow_drops")
			}
		}
		// Traced-side fields travel together: an entry measured with the
		// request tracer must carry the sampling rate, its throughput, and
		// the overhead ratio. Entries without the side stay valid.
		if r.TraceSample != 0 || r.TracedOpsPerSec != 0 || r.TraceOverhead != 0 ||
			r.TracedGetP50Ns != 0 || r.TracedGetP99Ns != 0 {
			switch {
			case r.TraceSample < 1:
				return fail("trace_sample")
			case r.TracedOpsPerSec <= 0:
				return fail("traced_ops_per_sec")
			case r.TraceOverhead <= 0:
				return fail("trace_overhead")
			}
		}
		// Latency quantiles, when present, must be ordered.
		quantiles := []struct {
			name     string
			p50, p99 int64
		}{
			{"single_get", r.SingleGetP50Ns, r.SingleGetP99Ns},
			{"sharded_get", r.ShardedGetP50Ns, r.ShardedGetP99Ns},
			{"buffered_get", r.BufferedGetP50Ns, r.BufferedGetP99Ns},
			{"shadow_get", r.ShadowGetP50Ns, r.ShadowGetP99Ns},
			{"traced_get", r.TracedGetP50Ns, r.TracedGetP99Ns},
		}
		for _, q := range quantiles {
			if q.p50 < 0 || q.p99 < 0 || (q.p99 > 0 && q.p50 > q.p99) {
				return fail(q.name + "_p50_ns/p99_ns")
			}
		}
	}
	return nil
}
