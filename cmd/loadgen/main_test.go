package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// tinyConfig keeps the harness end-to-end but small enough for CI.
func tinyConfig() config {
	return config{
		keys: 128, zipfS: 0.8, goroutines: 4, shards: 4,
		ops: 2000, valueBytes: 256, putEvery: 32,
		polSpec: "SIZE", reps: 1, seed: 7,
	}
}

// TestRunProducesValidEntry drives the full harness (both stores,
// prepopulation, timed reps) at a tiny scale, appends to a fresh
// trajectory, and requires the schema check to pass on the result.
func TestRunProducesValidEntry(t *testing.T) {
	res, err := run(tinyConfig(), os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleOpsPerSec <= 0 || res.ShardedOpsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if res.Speedup <= 0 {
		t.Fatalf("non-positive speedup: %v", res.Speedup)
	}
	// The auto capacity is 2× the working set, so after prepopulation
	// every Get must hit: the harness measures the hit path.
	if res.SingleHitRate < 0.999 || res.ShardedHitRate < 0.999 {
		t.Fatalf("hit rates %v / %v — the harness is not measuring the hit path",
			res.SingleHitRate, res.ShardedHitRate)
	}
	if res.GoMaxProcs < 1 || res.Benchmark != "proxy-contended-hotpath" {
		t.Fatalf("malformed entry: %+v", res)
	}

	path := filepath.Join(t.TempDir(), "BENCH_proxy.json")
	if err := appendResult(path, *res); err != nil {
		t.Fatal(err)
	}
	if err := validateTrajectory(path); err != nil {
		t.Fatalf("fresh trajectory fails its own schema: %v", err)
	}
	// Appends accumulate: a second entry must leave both readable.
	if err := appendResult(path, *res); err != nil {
		t.Fatal(err)
	}
	entries, err := readTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("trajectory holds %d entries after two appends", len(entries))
	}
}

// TestBufferedSideProducesValidEntry runs the three-sided harness — the
// read-mostly preset, the buffered sharded store with its Maintainer
// live — and checks the buffered fields land in the entry and survive
// the schema gate.
func TestBufferedSideProducesValidEntry(t *testing.T) {
	cfg := tinyConfig()
	cfg.preset = "read-mostly"
	cfg.touchBuffer = 256
	res, err := run(cfg, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preset != "read-mostly" || res.PutEvery != 100 {
		t.Fatalf("preset not applied: preset=%q put_every=%d", res.Preset, res.PutEvery)
	}
	if res.TouchBuffer != 256 || res.BufferedOpsPerSec <= 0 || res.BufferedSpeedup <= 0 {
		t.Fatalf("buffered side missing from entry: %+v", res)
	}
	if res.BufferedHitRate < 0.999 {
		t.Fatalf("buffered hit rate %v — the buffered side is not measuring the hit path", res.BufferedHitRate)
	}
	for _, q := range [][2]int64{
		{res.SingleGetP50Ns, res.SingleGetP99Ns},
		{res.ShardedGetP50Ns, res.ShardedGetP99Ns},
		{res.BufferedGetP50Ns, res.BufferedGetP99Ns},
	} {
		if q[0] <= 0 || q[1] <= 0 || q[0] > q[1] {
			t.Fatalf("latency quantiles malformed (p50 %d, p99 %d): %+v", q[0], q[1], res)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_proxy.json")
	if err := appendResult(path, *res); err != nil {
		t.Fatal(err)
	}
	if err := validateTrajectory(path); err != nil {
		t.Fatalf("buffered entry fails the schema: %v", err)
	}
}

// TestShadowSideProducesValidEntry runs the four-sided harness — the
// read-mostly preset with both the buffered store and the shadowed
// baseline carrying a three-policy ghost fleet — and checks the
// shadow_* fields land together and survive the schema gate.
func TestShadowSideProducesValidEntry(t *testing.T) {
	cfg := tinyConfig()
	cfg.preset = "read-mostly"
	cfg.touchBuffer = 256
	cfg.shadow = 3
	res, err := run(cfg, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShadowPolicies != "LRU,SIZE,LFU" {
		t.Fatalf("shadow_policies = %q, want the first three candidates", res.ShadowPolicies)
	}
	if res.ShadowOpsPerSec <= 0 || res.ShadowOverhead <= 0 {
		t.Fatalf("shadow side missing from entry: %+v", res)
	}
	if res.ShadowGetP50Ns <= 0 || res.ShadowGetP99Ns <= 0 || res.ShadowGetP50Ns > res.ShadowGetP99Ns {
		t.Fatalf("shadow latency quantiles malformed (p50 %d, p99 %d)", res.ShadowGetP50Ns, res.ShadowGetP99Ns)
	}
	if res.ShadowDrops < 0 {
		t.Fatalf("negative shadow drop count: %d", res.ShadowDrops)
	}
	path := filepath.Join(t.TempDir(), "BENCH_proxy.json")
	if err := appendResult(path, *res); err != nil {
		t.Fatal(err)
	}
	if err := validateTrajectory(path); err != nil {
		t.Fatalf("shadow entry fails the schema: %v", err)
	}
}

// TestShadowSideWithoutBufferUsesShardedBaseline pins that -shadow
// works without the buffered side: the shadowed store is then the plain
// sharded layout and the overhead is stated against it.
func TestShadowSideWithoutBufferUsesShardedBaseline(t *testing.T) {
	cfg := tinyConfig()
	cfg.shadow = 1
	res, err := run(cfg, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShadowPolicies != "LRU" || res.ShadowOpsPerSec <= 0 || res.ShadowOverhead <= 0 {
		t.Fatalf("shadow side missing from entry: %+v", res)
	}
}

// TestTracedSideProducesValidEntry runs the five-sided harness — the
// read-mostly preset with the buffered store and the traced baseline
// sampling every op — and checks the trace_* fields land together and
// survive the schema gate.
func TestTracedSideProducesValidEntry(t *testing.T) {
	cfg := tinyConfig()
	cfg.preset = "read-mostly"
	cfg.touchBuffer = 256
	cfg.traceSample = 1
	res, err := run(cfg, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceSample != 1 || res.TracedOpsPerSec <= 0 || res.TraceOverhead <= 0 {
		t.Fatalf("traced side missing from entry: %+v", res)
	}
	if res.TracedGetP50Ns <= 0 || res.TracedGetP99Ns <= 0 || res.TracedGetP50Ns > res.TracedGetP99Ns {
		t.Fatalf("traced latency quantiles malformed (p50 %d, p99 %d)", res.TracedGetP50Ns, res.TracedGetP99Ns)
	}
	path := filepath.Join(t.TempDir(), "BENCH_proxy.json")
	if err := appendResult(path, *res); err != nil {
		t.Fatal(err)
	}
	if err := validateTrajectory(path); err != nil {
		t.Fatalf("traced entry fails the schema: %v", err)
	}
}

// TestTracedSideWithoutBufferUsesShardedBaseline pins that
// -trace-sample works without the buffered side: the traced store is
// then the plain sharded layout and the overhead is stated against it.
func TestTracedSideWithoutBufferUsesShardedBaseline(t *testing.T) {
	cfg := tinyConfig()
	cfg.traceSample = 16
	res, err := run(cfg, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceSample != 16 || res.TracedOpsPerSec <= 0 || res.TraceOverhead <= 0 {
		t.Fatalf("traced side missing from entry: %+v", res)
	}
}

// TestShadowRejectsOversizedFleet pins the roster bound.
func TestShadowRejectsOversizedFleet(t *testing.T) {
	cfg := tinyConfig()
	cfg.shadow = len(shadowCandidates) + 1
	if _, err := run(cfg, os.Stdout); err == nil {
		t.Fatal("oversized -shadow accepted")
	}
}

// TestApplyPresetRejectsUnknown pins the preset gate.
func TestApplyPresetRejectsUnknown(t *testing.T) {
	cfg := tinyConfig()
	cfg.preset = "write-heavy"
	if _, err := run(cfg, os.Stdout); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestPlansAreDeterministic pins that the zipf op streams are a pure
// function of the seed — both store sides must see identical load.
func TestPlansAreDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, b := buildPlans(cfg), buildPlans(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different op plans")
	}
	cfg.seed++
	if reflect.DeepEqual(a, buildPlans(cfg)) {
		t.Fatal("different seeds produced identical op plans")
	}
	for g, p := range a {
		puts := 0
		for i := range p.idx {
			if int(p.idx[i]) < 0 || int(p.idx[i]) >= cfg.keys {
				t.Fatalf("goroutine %d op %d: key index %d out of range", g, i, p.idx[i])
			}
			if p.isPut[i] {
				puts++
			}
		}
		if puts != cfg.ops/cfg.putEvery {
			t.Fatalf("goroutine %d: %d puts, want %d", g, puts, cfg.ops/cfg.putEvery)
		}
	}
}

// TestValidateTrajectoryRejectsBadFiles covers the schema gate CI
// relies on.
func TestValidateTrajectoryRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	bad := map[string]string{
		"not-json.json":   "hello",
		"not-array.json":  `{"benchmark":"x"}`,
		"empty.json":      `[]`,
		"missing.json":    `[{"benchmark":"proxy-contended-hotpath"}]`,
		"zero-stats.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":0,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z"}]`,
		"bad-time.json":   `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"yesterday"}]`,
		// A touch buffer without its throughput: buffered fields travel together.
		"buffered-partial.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","touch_buffer":256}]`,
		// Crossed latency quantiles (p50 above p99).
		"crossed-quantiles.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","single_get_p50_ns":900,"single_get_p99_ns":100}]`,
		// A shadow throughput without its policy list: shadow fields travel together.
		"shadow-partial.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","shadow_ops_per_sec":1}]`,
		// A shadow policy list without the overhead ratio.
		"shadow-no-overhead.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","shadow_policies":"LRU","shadow_ops_per_sec":1}]`,
		// A traced throughput without its sampling rate: trace fields travel together.
		"trace-partial.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","traced_ops_per_sec":1}]`,
		// A trace sampling rate without the overhead ratio.
		"trace-no-overhead.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","trace_sample":1,"traced_ops_per_sec":1}]`,
	}
	for name, content := range bad {
		if err := validateTrajectory(write(name, content)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	good := `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z"}]`
	if err := validateTrajectory(write("good.json", good)); err != nil {
		t.Errorf("minimal valid trajectory rejected: %v", err)
	}
	goodBuffered := `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","preset":"read-mostly","touch_buffer":256,"buffered_ops_per_sec":1,"buffered_speedup":1,"single_get_p50_ns":100,"single_get_p99_ns":900}]`
	if err := validateTrajectory(write("good-buffered.json", goodBuffered)); err != nil {
		t.Errorf("valid buffered trajectory rejected: %v", err)
	}
	goodShadow := `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","shadow_policies":"LRU,SIZE,LFU","shadow_ops_per_sec":1,"shadow_overhead":1.02,"shadow_get_p50_ns":110,"shadow_get_p99_ns":950,"shadow_drops":3}]`
	if err := validateTrajectory(write("good-shadow.json", goodShadow)); err != nil {
		t.Errorf("valid shadow trajectory rejected: %v", err)
	}
	goodTraced := `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z","trace_sample":100,"traced_ops_per_sec":1,"trace_overhead":1.01,"traced_get_p50_ns":105,"traced_get_p99_ns":920}]`
	if err := validateTrajectory(write("good-traced.json", goodTraced)); err != nil {
		t.Errorf("valid traced trajectory rejected: %v", err)
	}
}
