package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// tinyConfig keeps the harness end-to-end but small enough for CI.
func tinyConfig() config {
	return config{
		keys: 128, zipfS: 0.8, goroutines: 4, shards: 4,
		ops: 2000, valueBytes: 256, putEvery: 32,
		polSpec: "SIZE", reps: 1, seed: 7,
	}
}

// TestRunProducesValidEntry drives the full harness (both stores,
// prepopulation, timed reps) at a tiny scale, appends to a fresh
// trajectory, and requires the schema check to pass on the result.
func TestRunProducesValidEntry(t *testing.T) {
	res, err := run(tinyConfig(), os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleOpsPerSec <= 0 || res.ShardedOpsPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if res.Speedup <= 0 {
		t.Fatalf("non-positive speedup: %v", res.Speedup)
	}
	// The auto capacity is 2× the working set, so after prepopulation
	// every Get must hit: the harness measures the hit path.
	if res.SingleHitRate < 0.999 || res.ShardedHitRate < 0.999 {
		t.Fatalf("hit rates %v / %v — the harness is not measuring the hit path",
			res.SingleHitRate, res.ShardedHitRate)
	}
	if res.GoMaxProcs < 1 || res.Benchmark != "proxy-contended-hotpath" {
		t.Fatalf("malformed entry: %+v", res)
	}

	path := filepath.Join(t.TempDir(), "BENCH_proxy.json")
	if err := appendResult(path, *res); err != nil {
		t.Fatal(err)
	}
	if err := validateTrajectory(path); err != nil {
		t.Fatalf("fresh trajectory fails its own schema: %v", err)
	}
	// Appends accumulate: a second entry must leave both readable.
	if err := appendResult(path, *res); err != nil {
		t.Fatal(err)
	}
	entries, err := readTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("trajectory holds %d entries after two appends", len(entries))
	}
}

// TestPlansAreDeterministic pins that the zipf op streams are a pure
// function of the seed — both store sides must see identical load.
func TestPlansAreDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, b := buildPlans(cfg), buildPlans(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different op plans")
	}
	cfg.seed++
	if reflect.DeepEqual(a, buildPlans(cfg)) {
		t.Fatal("different seeds produced identical op plans")
	}
	for g, p := range a {
		puts := 0
		for i := range p.idx {
			if int(p.idx[i]) < 0 || int(p.idx[i]) >= cfg.keys {
				t.Fatalf("goroutine %d op %d: key index %d out of range", g, i, p.idx[i])
			}
			if p.isPut[i] {
				puts++
			}
		}
		if puts != cfg.ops/cfg.putEvery {
			t.Fatalf("goroutine %d: %d puts, want %d", g, puts, cfg.ops/cfg.putEvery)
		}
	}
}

// TestValidateTrajectoryRejectsBadFiles covers the schema gate CI
// relies on.
func TestValidateTrajectoryRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	bad := map[string]string{
		"not-json.json":   "hello",
		"not-array.json":  `{"benchmark":"x"}`,
		"empty.json":      `[]`,
		"missing.json":    `[{"benchmark":"proxy-contended-hotpath"}]`,
		"zero-stats.json": `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":0,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z"}]`,
		"bad-time.json":   `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"yesterday"}]`,
	}
	for name, content := range bad {
		if err := validateTrajectory(write(name, content)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	good := `[{"benchmark":"b","git_rev":"r","gomaxprocs":1,"goroutines":1,"shards":1,"keys":1,"ops_per_goroutine":1,"single_mutex_ops_per_sec":1,"sharded_ops_per_sec":1,"speedup":1,"generated":"2026-01-01T00:00:00Z"}]`
	if err := validateTrajectory(write("good.json", good)); err != nil {
		t.Errorf("minimal valid trajectory rejected: %v", err)
	}
}
