// Command tracegen emits one of the paper's synthetic workloads as an
// (extended) common-log-format file, including the invalid noise lines a
// real log contains — feed the output to websim -trace or httpfilter
// consumers.
//
// Usage:
//
//	tracegen -workload BL -scale 0.1 -seed 42 > bl.log
//	tracegen -config mylab.json > lab.log
//	tracegen -workload BL -validated -emit-bin bl.wct   # binary trace cache
//
// -emit-bin writes the trace in the compact binary format that websim's
// -trace-cache flag reads back (one decode per corpus instead of one
// CLF parse per run); nothing is written to stdout in that mode.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"webcache/internal/obs"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "BL", "workload: U, G, C, BR, BL")
		config   = flag.String("config", "", "JSON workload definition (overrides -workload)")
		scale    = flag.Float64("scale", 1.0, "volume scale (1.0 = paper volume)")
		seed     = flag.Uint64("seed", 42, "generation seed")
		extended = flag.Bool("extended", true, "append Last-Modified extended fields where present")
		validate = flag.Bool("validated", false, "apply §1.1 validation before writing (drop invalid lines)")
		emitBin  = flag.String("emit-bin", "", "write the trace to this file in binary form instead of CLF on stdout")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("tracegen", obs.BuildInfo())
		return
	}

	if err := run(*wl, *config, *scale, *seed, *extended, *validate, *emitBin); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(wl, config string, scale float64, seed uint64, extended, validate bool, emitBin string) error {
	var cfg workload.Config
	var err error
	if config != "" {
		f, err := os.Open(config)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg, err = workload.FromJSON(f)
		if err != nil {
			return err
		}
	} else {
		cfg, err = workload.ByName(wl, seed)
		if err != nil {
			return err
		}
	}
	cfg.Scale = scale
	tr, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	if validate {
		var stats *trace.ValidateStats
		tr, stats = trace.Validate(tr)
		fmt.Fprintf(os.Stderr, "tracegen: %d of %d lines valid\n", stats.Kept, stats.Input)
	}
	if emitBin != "" {
		return trace.WriteBinaryFile(emitBin, tr)
	}
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if err := trace.WriteCLF(w, tr, extended); err != nil {
		return err
	}
	return w.Flush()
}
