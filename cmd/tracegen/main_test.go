package main

import (
	"os"
	"testing"
)

func TestRunWritesCLF(t *testing.T) {
	// run writes to stdout; redirect it to a pipe and count lines.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("C", "", 0.005, 7, true, true)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if n == 0 {
		t.Fatal("tracegen produced no output")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run("ZZ", "", 0.01, 1, false, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunWithJSONConfig(t *testing.T) {
	js := `{"name":"lab","days":5,"requests":300,"totalBytes":3000000,
	  "types":[{"type":"Text","refShare":1.0,"byteShare":1.0,"newDocProb":0.5}]}`
	dir := t.TempDir()
	path := dir + "/lab.json"
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("", path, 1.0, 1, false, true)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<20)
	if n, _ := r.Read(buf); n == 0 {
		t.Fatal("config-driven tracegen produced nothing")
	}
}

func TestRunWithMissingConfig(t *testing.T) {
	if err := run("", "/nonexistent/x.json", 1, 1, false, false); err == nil {
		t.Fatal("missing config accepted")
	}
}
