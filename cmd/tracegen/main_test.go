package main

import (
	"os"
	"path/filepath"
	"testing"

	"webcache/internal/trace"
)

func TestRunWritesCLF(t *testing.T) {
	// run writes to stdout; redirect it to a pipe and count lines.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("C", "", 0.005, 7, true, true, "")
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if n == 0 {
		t.Fatal("tracegen produced no output")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run("ZZ", "", 0.01, 1, false, false, ""); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunWithJSONConfig(t *testing.T) {
	js := `{"name":"lab","days":5,"requests":300,"totalBytes":3000000,
	  "types":[{"type":"Text","refShare":1.0,"byteShare":1.0,"newDocProb":0.5}]}`
	dir := t.TempDir()
	path := dir + "/lab.json"
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("", path, 1.0, 1, false, true, "")
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<20)
	if n, _ := r.Read(buf); n == 0 {
		t.Fatal("config-driven tracegen produced nothing")
	}
}

// TestRunEmitBin checks -emit-bin: the binary file round-trips through
// the trace reader and stdout stays silent.
func TestRunEmitBin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wct")
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("C", "", 0.005, 7, true, true, path)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<10)
	if n, _ := r.Read(buf); n != 0 {
		t.Fatalf("-emit-bin wrote %d bytes to stdout, want none", n)
	}
	tr, err := trace.ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("binary trace is empty")
	}
	for i := range tr.Requests {
		if tr.Requests[i].Status != 200 {
			t.Fatal("-validated not applied before -emit-bin")
		}
	}
}

func TestRunWithMissingConfig(t *testing.T) {
	if err := run("", "/nonexistent/x.json", 1, 1, false, false, ""); err == nil {
		t.Fatal("missing config accepted")
	}
}
