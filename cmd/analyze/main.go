// Command analyze characterizes a Web request trace the way §2.2 of the
// paper characterizes its workloads (the role the authors' Chitra95
// toolset played): file-type mix, popularity concentration, document
// size distribution and temporal locality — the data behind Figures 1,
// 2, 13 and 14.
//
// Usage:
//
//	analyze -trace access.log            # a real common-log-format file
//	analyze -workload BL -scale 0.5      # a synthetic workload
package main

import (
	"flag"
	"fmt"
	"os"

	"webcache/internal/analysis"
	"webcache/internal/trace"
	"webcache/internal/workload"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "common-log-format file to analyze")
		wl        = flag.String("workload", "", "synthetic workload to analyze (U, G, C, BR, BL)")
		scale     = flag.Float64("scale", 1.0, "synthetic workload scale")
		seed      = flag.Uint64("seed", 42, "synthetic workload seed")
	)
	flag.Parse()

	tr, err := load(*traceFile, *wl, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Print(analysis.Analyze(tr).Render())
}

func load(traceFile, wl string, scale float64, seed uint64) (*trace.Trace, error) {
	switch {
	case traceFile != "":
		raw, rstats, err := trace.ReadCLFFile(traceFile, traceFile)
		if err != nil {
			return nil, err
		}
		if rstats.Malformed > 0 {
			fmt.Fprintf(os.Stderr, "analyze: skipped %d malformed lines\n", rstats.Malformed)
		}
		valid, vstats := trace.Validate(raw)
		fmt.Fprintf(os.Stderr, "analyze: %d of %d lines valid\n", vstats.Kept, vstats.Input)
		return valid, nil
	case wl != "":
		cfg, err := workload.ByName(wl, seed)
		if err != nil {
			return nil, err
		}
		cfg.Scale = scale
		tr, _, err := workload.GenerateValidated(cfg)
		return tr, err
	}
	return nil, fmt.Errorf("need -trace or -workload")
}
