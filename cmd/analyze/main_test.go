package main

import (
	"os"
	"path/filepath"
	"testing"

	"webcache/internal/trace"
	"webcache/internal/workload"
)

func TestLoadWorkload(t *testing.T) {
	tr, err := load("", "G", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("empty workload")
	}
}

func TestLoadFile(t *testing.T) {
	cfg := workload.G(3)
	cfg.Scale = 0.01
	raw, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCLF(f, raw, false); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr, err := load(path, "", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("empty file trace")
	}
}

func TestLoadNeither(t *testing.T) {
	if _, err := load("", "", 1, 1); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestLoadUnknownWorkload(t *testing.T) {
	if _, err := load("", "ZZ", 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
